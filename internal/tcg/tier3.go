// Tier-3 IR-less translation: closure-compiled superblocks.
//
// A superblock that stays hot after promotion (its tier-2 entry count
// crosses Tier3Threshold) is compiled once more, this time out of the
// micro-op array entirely: every uop becomes a small specialized Go closure
// with its operands, widths, sign shifts and branch polarity resolved at
// compile time — no dispatch switch, no per-uop bounds checks, no per-uop
// operand decode. This is the "foregoing the IR" model: the host program
// *is* the translation.
//
// Execution is subroutine-threaded: the closures of one straight-line
// segment are chained (`return next(c)`), so every indirect call site is
// monomorphic — one caller, one target — and predicts perfectly. (A flat
// dispatch loop calling ops[k](c) was measured 10-20% slower: its single
// call site is megamorphic and mispredicts on nearly every op.) A tier3
// is a flat array of chunks, each a chain of at most t3ChunkOps fused
// closures (bounding the chain keeps the host's return-address stack from
// overflowing on long straight-line segments). A segment's aggregate
// virtual cost and guest-instruction count live on its first chunk and
// are charged inline by the trampoline — branch-free adds, no charge
// closure call.
//
// Memory closures keep a per-site TLB line in their environment: one
// static load/store site overwhelmingly re-touches the page it touched
// last, so the hit path is a page-number compare against a closure-local
// cell instead of an index into the engine's shared TLB array. Misses
// revalidate through the engine TLB / softmmu and refill the site line.
//
// Coherence: the trampoline revalidates the cache generation at trace
// entry (Exec's dispatch check), at every back-edge, after HINT callbacks,
// and before any segment that starts on a different guest code page than
// its predecessor (the chunk's guard flag). A failed check abandons the
// compiled form at an exact instruction boundary and falls back to
// tier-2/tier-1 — counted in Stats.Tier3Demotions. Faults inside a segment
// reuse the tier-2 refund arithmetic (refundTail) via the captured uop
// index, so restart-at-faulting-instruction semantics are bit-identical
// across tiers.
//
// Closures must allocate only at compile time: the execution path is
// zero-alloc (enforced by the dqlint t3alloc rule and pinned by
// TestTier3ExecAllocs).
package tcg

import (
	"encoding/binary"
	"fmt"
	"math"

	"dqemu/internal/isa"
	"dqemu/internal/mem"
)

// DefaultTier3Threshold is the tier-2 entry count at which a superblock is
// compiled to closures. It is deliberately lower than DefaultHotThreshold:
// a superblock only exists because its head block was already hot.
const DefaultTier3Threshold = 24

func (e *Engine) tier3Threshold() uint32 {
	if e.Tier3Threshold != 0 {
		return e.Tier3Threshold
	}
	return DefaultTier3Threshold
}

// t3op is one compiled micro-op (possibly several fused guest ops): it
// mutates guest state through the context and either calls the next
// closure of the chain or returns a disposition to the trampoline.
// Dispositions bubble up through the chain's returns, so a fault deep
// inside a segment unwinds naturally.
type t3op func(c *t3ctx) int32

// Trampoline dispositions returned by the closure chain.
const (
	t3Next   int32 = iota // chunk ran off its end: advance to the next chunk
	t3Loop                // back-edge: re-enter the head (budget/gen checked by the trampoline)
	t3Exit                // trace exit: PC and c.next are set; resume in Exec
	t3Switch              // jump-cache hit on a compiled target: tail-enter c.sw
	t3Stop                // quantum ends: c.res/c.stop are set
	t3Demote              // generation changed mid-trace: fall back to tier-2

	// t3Cont is an internal sentinel returned by the shared fault/atomic
	// helpers: "no disposition — continue down the chain". It never
	// reaches the trampoline.
	t3Cont int32 = -1
)

// t3ctx is the execution context threaded through the closure chain. One
// context lives per trampoline activation; Engine keeps a small pool so
// steady-state execution never allocates.
type t3ctx struct {
	e        *Engine
	cpu      *CPU
	x        *[32]uint64
	f        *[32]float64
	spent    *int64 // points at spentv; never at a caller's stack slot
	spentv   int64  // keeps the caller's accumulator from escaping to the heap
	budget   int64
	executed uint64
	monEmpty bool
	next     *block
	sw       *tier3
	res      Result
	stop     bool
}

// t3chunk is one trampoline step: a closure chain plus the charge the
// trampoline applies inline before calling it. Only a segment's first
// chunk carries a nonzero cost/insns (continuation chunks cut mid-segment
// charge nothing); guard marks segments that start on a different guest
// code page than their predecessor, revalidated against the translation
// generation before entry.
type t3chunk struct {
	fn    t3op
	cost  int64
	insns uint64
	pc    uint64 // segment-start PC: demotion resume point for the guard
	guard bool
}

// tier3 is the closure-compiled form of a superblock: a flat chunk array
// the trampoline walks on disposition codes.
type tier3 struct {
	entry  uint64
	gen    uint64
	chunks []t3chunk
}

// t3ChunkOps caps the closure-chain depth of one chunk, comfortably under
// typical hardware return-address-stack depth (16) with room for the
// trampoline and Exec frames beneath.
const t3ChunkOps = 10

// t3adv ends a chunk that was cut mid-segment: hand control back to the
// trampoline, which calls the next chunk in the array.
func t3adv(c *t3ctx) int32 { return t3Next }

var errT3Fall = fmt.Errorf("tcg: tier-3 trace fell off the end")

func (e *Engine) t3acquire() *t3ctx {
	if int(e.t3depth) < len(e.t3pool) {
		c := &e.t3pool[e.t3depth]
		e.t3depth++
		return c
	}
	// Pathological re-entrancy depth (hint hooks nested 4+ deep): fall back
	// to an allocation rather than corrupting a live context.
	return &t3ctx{}
}

func (e *Engine) t3release(c *t3ctx, spent *int64) {
	*spent = c.spentv
	e.Stats.Tier3Insns += c.executed
	e.Stats.ExecInsns += c.executed
	c.cpu, c.x, c.f, c.spent = nil, nil, nil, nil
	c.next, c.sw = nil, nil
	if e.t3depth > 0 && c == &e.t3pool[e.t3depth-1] {
		e.t3depth--
	}
}

// execTier3 is the trampoline: it walks the chunk array, applying each
// chunk's charge and code-page generation guard inline, and handles the
// dispositions that unwind out of the closure chains. Return convention
// matches execSuper.
func (e *Engine) execTier3(cpu *CPU, t3 *tier3, spent *int64, budgetNs int64) (*block, Result, bool) {
	c := e.t3acquire()
	c.e, c.cpu = e, cpu
	c.x, c.f = &cpu.X, &cpu.F
	// Accumulate into the pooled context, not through the caller's pointer:
	// stashing spent itself in the (heap-resident) context would force the
	// caller's accumulator to escape, costing one allocation per Exec.
	c.spentv = *spent
	c.spent, c.budget = &c.spentv, budgetNs
	c.executed = 0
	c.monEmpty = e.Mon.Empty()
	c.next, c.sw, c.stop = nil, nil, false
	c.res = Result{}

	chunks := t3.chunks
	ci := 0
	for {
		ch := &chunks[ci]
		if ch.guard && t3.gen != e.gen {
			// Everything before this boundary retired exactly once; resume
			// at the segment's first instruction on tier-2/1.
			cpu.PC = ch.pc
			e.Stats.Tier3Demotions++
			e.t3release(c, spent)
			return nil, Result{}, false
		}
		c.spentv += ch.cost
		c.executed += ch.insns
		switch ch.fn(c) {
		case t3Next:
			ci++
			continue
		case t3Loop:
			if c.spentv >= budgetNs || t3.gen != e.gen {
				if t3.gen != e.gen {
					e.Stats.Tier3Demotions++
				}
				cpu.PC = t3.entry
				e.t3release(c, spent)
				return nil, Result{}, false
			}
			ci = 0 // re-enter the head; the entry charge reapplies
		case t3Switch:
			if c.spentv >= budgetNs {
				// Quantum exhausted at a trace boundary; PC is already at
				// the target trace's entry.
				c.sw = nil
				e.t3release(c, spent)
				return nil, Result{}, false
			}
			t3 = c.sw
			c.sw = nil
			chunks = t3.chunks
			ci = 0
		case t3Exit:
			next := c.next
			e.t3release(c, spent)
			return next, Result{}, false
		case t3Demote:
			e.Stats.Tier3Demotions++
			e.t3release(c, spent)
			return nil, Result{}, false
		default: // t3Stop
			res := c.res
			e.t3release(c, spent)
			return nil, res, true
		}
	}
}

// t3seg is the fusion plan for one cost segment: ops[first:last] are the
// straight-line mids, ops[last] the terminating boundary uop.
type t3seg struct {
	first, last int
	units       []t3unit
	groups      []int // group start indices into units (mem-run fusion)
}

// t3plan is the complete compilation plan for a superblock: segment
// boundaries, the back-edge fold, and each segment's fusion units and
// memory-run groups. compileTier3 consumes it mechanically, which makes
// the plan the single structure the tier-3 checker (tier3check.go) has to
// validate against the tier-2 uop sequence.
type t3plan struct {
	starts   []int // segment start indices, one per segBoundary
	fuseLoop bool  // trailing bare uLoopBack folded into the predecessor
	segs     []t3seg
}

// planTier3 derives the compilation plan from a segmentized uop array.
// Returns ok=false when the shape is not compilable (empty trace or no
// trailing segment boundary).
func planTier3(ops []uop) (t3plan, bool) {
	if len(ops) == 0 || !segBoundary(ops[len(ops)-1].kind) {
		return t3plan{}, false
	}
	var p t3plan
	segStart := 0
	for i := range ops {
		if segBoundary(ops[i].kind) {
			p.starts = append(p.starts, segStart)
			segStart = i + 1
		}
	}

	// A final segment that is a bare back-edge gets folded into its
	// predecessor's fall-through: charge + t3Loop in one closure (the
	// trampoline revalidates the generation immediately after, so the
	// page-boundary guard is redundant there).
	nseg := len(p.starts)
	if nseg >= 2 {
		lastFirst := p.starts[nseg-1]
		if lastFirst == len(ops)-1 && ops[lastFirst].kind == uLoopBack {
			p.fuseLoop = true
			nseg--
		}
	}

	p.segs = make([]t3seg, nseg)
	for s := 0; s < nseg; s++ {
		first := p.starts[s]
		last := len(ops) - 1
		if s+1 < len(p.starts) {
			last = p.starts[s+1] - 1
		}
		seg := t3seg{first: first, last: last}
		// Fusion plan for the straight-line mids: a greedy forward scan
		// folds address-bump addis into their neighbouring memory ops (pre:
		// addi right before the access, may feed the address; post: addi
		// right after it) and pairs leftover adjacent addis. One unit = one
		// compiled closure, so an addi-load-addi triple retires in a single
		// call — these are the hottest sequences the uopseq profile mines.
		for j := first; j < last; {
			k := ops[j].kind
			if k == uAddi && j+1 < last && memFusable(ops[j+1].kind) {
				un := t3unit{op: j + 1, pre: j, post: -1, pair: -1}
				j += 2
				if j < last && ops[j].kind == uAddi {
					un.post = j
					j++
				}
				seg.units = append(seg.units, un)
				continue
			}
			if memFusable(k) {
				un := t3unit{op: j, pre: -1, post: -1, pair: -1}
				j++
				if j < last && ops[j].kind == uAddi {
					un.post = j
					j++
				}
				seg.units = append(seg.units, un)
				continue
			}
			if k == uAddi && j+1 < last && ops[j+1].kind == uAddi {
				seg.units = append(seg.units, t3unit{op: j, pre: -1, post: -1, pair: j + 1})
				j += 2
				continue
			}
			if k == uAddi && j+1 < last && addiMidable(ops[j+1].kind) {
				seg.units = append(seg.units, t3unit{op: j + 1, pre: j, post: -1, pair: -1})
				j += 2
				continue
			}
			seg.units = append(seg.units, t3unit{op: j, pre: -1, post: -1, pair: -1})
			j++
		}
		// Second-level fusion: runs of up to t3MemRun adjacent 8-byte
		// loads/stores (integer or double FP, each keeping its own addi
		// fusions and site TLB line) collapse into one closure — the
		// load-load / store-addi-load / fload-fload runs the uopseq profile
		// surfaces. Wider runs amortize the per-closure call overhead that
		// dominates mem-heavy inner loops.
		seg.groups = make([]int, 0, len(seg.units))
		for k := 0; k < len(seg.units); {
			g := 1
			if pair8able(ops, seg.units[k]) {
				for g < t3MemRun && k+g < len(seg.units) && pair8able(ops, seg.units[k+g]) {
					g++
				}
			}
			seg.groups = append(seg.groups, k)
			k += g
		}
		p.segs[s] = seg
	}
	return p, true
}

// compileTier3 compiles sb into a chunk array, charging translation time
// like buildTrace. Each cost segment becomes one chunk: a fusion plan over
// the straight-line mids (addi absorption, mem pairing) followed by one
// leaf closure per plan unit plus the compiled tail. Returns nil when the
// superblock contains a shape the closure compiler does not handle
// (execution then stays on tier-2 permanently).
func (e *Engine) compileTier3(sb *superblock, spent *int64) *tier3 {
	ops := sb.ops
	plan, ok := planTier3(ops)
	if !ok {
		return nil
	}
	t3 := &tier3{entry: sb.entry, gen: sb.gen}
	starts := plan.starts
	nseg := len(plan.segs)
	fuseLoop := plan.fuseLoop

	// The last compiled segment ends in a true exit, so its fall-through
	// is never taken; give it a defensive stop.
	tailNext := t3op(func(c *t3ctx) int32 {
		c.cpu.PC = t3.entry
		c.res = Result{Reason: StopError, Err: errT3Fall}
		c.stop = true
		return t3Stop
	})
	if fuseLoop {
		u := &ops[len(ops)-1]
		cost, insns := int64(u.cost), uint64(u.insns)
		tailNext = func(c *t3ctx) int32 {
			*c.spent += cost
			c.executed += insns
			return t3Loop
		}
	}

	// segChunks[s] is segment s's chunks in forward order.
	segChunks := make([][]t3chunk, nseg)
	for s := nseg - 1; s >= 0; s-- {
		first := plan.segs[s].first
		last := plan.segs[s].last
		var next t3op = t3adv
		if s == nseg-1 {
			next = tailNext
		}
		tail := e.compileTail(sb, last, next)
		if tail == nil {
			return nil
		}
		units := plan.segs[s].units
		groups := plan.segs[s].groups
		var rev []t3op // cut chunk heads, segment-end first
		fn := tail
		n := 1
		for gi := len(groups) - 1; gi >= 0; gi-- {
			if n == t3ChunkOps {
				rev = append(rev, fn)
				fn = t3adv
				n = 0
			}
			start := groups[gi]
			end := len(units)
			if gi+1 < len(groups) {
				end = groups[gi+1]
			}
			if end-start > 1 {
				fn = e.compileMemRun(sb, units[start:end], fn)
				n++
				continue
			}
			un := units[start]
			switch {
			case memFusable(ops[un.op].kind):
				var pre, post *uop
				if un.pre >= 0 {
					pre = &ops[un.pre]
				}
				if un.post >= 0 {
					post = &ops[un.post]
				}
				fn = e.compileMem(sb, un.op, fuseAddi(pre), fuseAddi(post), fn)
			case un.pair >= 0:
				fn = compileAddiPair(&ops[un.op], &ops[un.pair], fn)
			case un.pre >= 0:
				fn = compileAddiMid(&ops[un.pre], &ops[un.op], fn)
			default:
				fn = e.compileMid(sb, un.op, fn)
			}
			if fn == nil {
				return nil
			}
			n++
		}
		guard := false
		if s > 0 {
			guard = e.Mem.PageOf(e.Mem.Translate(ops[first].pc)) !=
				e.Mem.PageOf(e.Mem.Translate(ops[starts[s-1]].pc))
		}
		chunks := make([]t3chunk, 0, len(rev)+1)
		chunks = append(chunks, t3chunk{fn: fn,
			cost: int64(ops[first].cost), insns: uint64(ops[first].insns),
			pc: ops[first].pc, guard: guard})
		for k := len(rev) - 1; k >= 0; k-- {
			chunks = append(chunks, t3chunk{fn: rev[k]})
		}
		segChunks[s] = chunks
	}
	for _, sc := range segChunks {
		t3.chunks = append(t3.chunks, sc...)
	}

	t := int64(sb.ninsns) * e.Cost.TranslateNs
	*spent += t
	e.Stats.TranslateNs += t
	e.Stats.Tier3TranslateNs += t
	e.Stats.Tier3Superblocks++

	if e.Verify {
		if err := e.checkTier3(sb, t3); err != nil {
			// Reject the compilation: the caller records the sticky t3fail
			// and the superblock stays on tier-2, which is verified
			// separately by symEquivSeq.
			e.Stats.Tier3CheckFailures++
			if e.OnVerifyFail != nil {
				e.OnVerifyFail("tier3", sb.entry, err)
			}
			return nil
		}
		e.Stats.VerifiedTier3++
	}
	return t3
}

// pageFault exits the compiled trace on a page fault: refund the
// unexecuted tail of the segment and stop with PC at the faulting
// instruction, exactly like superFault.
func (c *t3ctx) pageFault(sb *superblock, i int, fl *mem.Fault) int32 {
	refundTail(sb, i, c.spent, &c.executed)
	c.cpu.PC = sb.ops[i].pc
	c.e.Stats.Faults++
	*c.spent += c.e.Cost.FaultNs
	c.res = Result{Reason: StopPageFault, Fault: *fl}
	c.stop = true
	return t3Stop
}

// alignFault mirrors superAlign for the compiled tier.
func (c *t3ctx) alignFault(sb *superblock, i int, addr uint64) int32 {
	refundTail(sb, i, c.spent, &c.executed)
	c.cpu.PC = sb.ops[i].pc
	c.res = Result{Reason: StopError,
		Err: fmt.Errorf("tcg: misaligned atomic %#x at %#x", addr, sb.ops[i].pc)}
	c.stop = true
	return t3Stop
}

// chainTo transfers control to the resolved exit block h. When h's
// superblock is closure-compiled and current, execution switches straight
// to that trace in the same context — no Exec round trip, no context
// re-init; the trampoline re-checks the budget on the way. Otherwise the
// trace exits to Exec with c.next = h.
func (c *t3ctx) chainTo(h *block) int32 {
	if h != nil {
		if nsb := h.sb; nsb != nil && nsb.t3 != nil && nsb.gen == c.e.gen {
			c.sw = nsb.t3
			return t3Switch
		}
	}
	c.next = h
	return t3Exit
}

// t3unit is one entry of a segment's fusion plan: the uop at op, plus an
// optional pre/post addi folded into a memory op, or a paired second addi.
// Unused slots are -1.
type t3unit struct{ op, pre, post, pair int }

// memFusable reports whether k is a plain memory access that accepts
// pre/post addi fusion (atomics and sanitizer probes are excluded — their
// side-effect ordering is handled by the tail compiler).
func memFusable(k uopKind) bool {
	switch k {
	case uLoad, uStore, uFLoad, uFStore:
		return true
	}
	return false
}

// addiFuse is a neighbouring address-bump addi folded into a memory-op
// closure. The pre addi executes before the access (its result may feed
// the address); the post addi executes only after the access succeeds.
// That preserves fault-restart semantics: a faulting access leaves the pre
// addi retired and the post addi unexecuted — the architectural order.
type addiFuse struct {
	on  bool
	rd  uint8
	rs  uint8
	imm uint64
}

func fuseAddi(u *uop) addiFuse {
	if u == nil {
		return addiFuse{}
	}
	return addiFuse{on: true, rd: u.rd, rs: u.rs1, imm: uint64(u.imm)}
}

// sitePageSize is the page size the per-site TLB lines assume. Holding the
// page bytes as a fixed-size array pointer lets the compiler prove every
// site-hit access in bounds from the `off+size <= sitePageSize` guard and
// drop the bounds checks; spaces with a non-default page size simply never
// fill site lines and stay on the engine-TLB/softmmu path.
const sitePageSize = mem.DefaultPageSize

// siteTLB is a memory closure's private TLB line: the page its static
// load/store site touched last. One heap object per site, allocated at
// compile time; validity matches the engine TLB (page number plus fill
// epoch). The hit path is a compare against these fields — no index into
// the engine's shared TLB array, and no cross-site eviction.
type siteTLB struct {
	page  uint64
	epoch uint64
	data  *[sitePageSize]byte
}

// fillRd refills the site line for pn from the engine read TLB after a
// site miss (slowLoad installs qualifying pages there). Returns whether
// the site line is now valid for pn.
func (st *siteTLB) fillRd(en *Engine, mmu *mem.Space, pn uint64) bool {
	if ln := &en.rdTLB[pn&(accelTLBSize-1)]; ln.PageNo == pn && ln.Epoch == mmu.Epoch() &&
		len(ln.Data) == sitePageSize {
		st.page, st.epoch, st.data = ln.PageNo, ln.Epoch, (*[sitePageSize]byte)(ln.Data)
		return true
	}
	return false
}

// fillWr is fillRd for the write TLB.
func (st *siteTLB) fillWr(en *Engine, mmu *mem.Space, pn uint64) bool {
	if ln := &en.wrTLB[pn&(accelTLBSize-1)]; ln.PageNo == pn && ln.Epoch == mmu.Epoch() &&
		len(ln.Data) == sitePageSize {
		st.page, st.epoch, st.data = ln.PageNo, ln.Epoch, (*[sitePageSize]byte)(ln.Data)
		return true
	}
	return false
}

// loadMiss8 is the outlined slow half of an 8-byte load site: revalidate
// through the engine TLB, then the softmmu, refilling the site line on
// the way out. The int32 is t3Cont on success or a fault disposition.
func (c *t3ctx) loadMiss8(st *siteTLB, sb *superblock, i int, addr, pn, off uint64) (uint64, int32) {
	en := c.e
	mmu := en.Mem
	if st.fillRd(en, mmu, pn) && off+8 <= sitePageSize {
		return binary.LittleEndian.Uint64(st.data[off : off+8]), t3Cont
	}
	v, fault := en.slowLoad(addr, 8)
	if fault != nil {
		return 0, c.pageFault(sb, i, fault)
	}
	st.fillRd(en, mmu, pn)
	return v, t3Cont
}

// loadMiss4 is loadMiss8 for 4-byte loads (zero-extended; the caller
// applies any sign extension).
func (c *t3ctx) loadMiss4(st *siteTLB, sb *superblock, i int, addr, pn, off uint64) (uint64, int32) {
	en := c.e
	mmu := en.Mem
	if st.fillRd(en, mmu, pn) && off+4 <= sitePageSize {
		return uint64(binary.LittleEndian.Uint32(st.data[off : off+4])), t3Cont
	}
	v, fault := en.slowLoad(addr, 4)
	if fault != nil {
		return 0, c.pageFault(sb, i, fault)
	}
	st.fillRd(en, mmu, pn)
	return v, t3Cont
}

// storeMiss8 is the outlined slow half of an 8-byte store site.
func (c *t3ctx) storeMiss8(st *siteTLB, sb *superblock, i int, addr, pn, off, val uint64) int32 {
	en := c.e
	mmu := en.Mem
	if st.fillWr(en, mmu, pn) && off+8 <= sitePageSize {
		binary.LittleEndian.PutUint64(st.data[off:off+8], val)
		return t3Cont
	}
	if fault := en.slowStore(addr, val, 8); fault != nil {
		return c.pageFault(sb, i, fault)
	}
	st.fillWr(en, mmu, pn)
	return t3Cont
}

// storeMiss4 is storeMiss8 for 4-byte stores.
func (c *t3ctx) storeMiss4(st *siteTLB, sb *superblock, i int, addr, pn, off, val uint64) int32 {
	en := c.e
	mmu := en.Mem
	if st.fillWr(en, mmu, pn) && off+4 <= sitePageSize {
		binary.LittleEndian.PutUint32(st.data[off:off+4], uint32(val))
		return t3Cont
	}
	if fault := en.slowStore(addr, val, 4); fault != nil {
		return c.pageFault(sb, i, fault)
	}
	st.fillWr(en, mmu, pn)
	return t3Cont
}

// pair8able reports whether unit u is a plain 8-byte load or store —
// integer (with rd live for loads) or double-precision FP — that can fuse
// with an adjacent one. Units that already carry a second access or an
// addi pair are excluded.
func pair8able(ops []uop, u t3unit) bool {
	if u.pair >= 0 {
		return false
	}
	op := &ops[u.op]
	switch op.kind {
	case uLoad:
		return op.size == 8 && op.rd != 0
	case uStore:
		return op.size == 8
	case uFLoad, uFStore:
		return true
	}
	return false
}

// t3MemRun caps the width of a fused memory-run closure.
const t3MemRun = 6

// memAcc is one access of a fused memory run, fully pre-decoded at compile
// time: its addi fusions, operand registers, kind (integer/FP load/store,
// all 8-byte) and private site TLB line.
type memAcc struct {
	pre, post addiFuse
	rd        uint8
	rs1       uint8
	rs2       uint8
	load      bool
	fp        bool
	imm       uint64
	idx       int
	st        *siteTLB
}

// compileMemRun compiles a run of 2..t3MemRun fused 8-byte accesses —
// integer or double-precision FP, each with its own pre/post addi and its
// own site TLB line — into one closure, amortizing the per-closure call
// overhead across the whole run. Program order is preserved exactly: a
// fault on access k leaves accesses 0..k-1 and their addi fusions retired,
// with PC at access k's instruction (pageFault refunds from ac.idx).
func (e *Engine) compileMemRun(sb *superblock, us []t3unit, next t3op) t3op {
	ops := sb.ops
	var accs [t3MemRun]memAcc
	for k := range us {
		un := us[k]
		u := &ops[un.op]
		ac := memAcc{rd: u.rd, rs1: u.rs1, rs2: u.rs2, imm: uint64(u.imm), idx: un.op,
			load: u.kind == uLoad || u.kind == uFLoad,
			fp:   u.kind == uFLoad || u.kind == uFStore,
			st:   &siteTLB{page: ^uint64(0)}}
		if un.pre >= 0 {
			ac.pre = fuseAddi(&ops[un.pre])
		}
		if un.post >= 0 {
			ac.post = fuseAddi(&ops[un.post])
		}
		accs[k] = ac
	}
	nacc := len(us)
	shift, mask := e.pageShift, e.pageMask
	mmu := e.Mem
	return func(c *t3ctx) int32 {
		x := c.x
		{
			ac := &accs[0]
			if ac.pre.on {
				x[ac.pre.rd] = x[ac.pre.rs] + ac.pre.imm
			}
			addr := x[ac.rs1] + ac.imm
			pn := addr >> shift
			off := addr & mask
			st := ac.st
			if ac.load {
				var v uint64
				if pn == st.page && st.epoch == mmu.Epoch() && off+8 <= sitePageSize {
					v = binary.LittleEndian.Uint64(st.data[off : off+8])
				} else {
					var d int32
					if v, d = c.loadMiss8(st, sb, ac.idx, addr, pn, off); d != t3Cont {
						return d
					}
				}
				if ac.fp {
					c.f[ac.rd] = math.Float64frombits(v)
				} else {
					x[ac.rd] = v
				}
			} else {
				val := x[ac.rs2]
				if ac.fp {
					val = math.Float64bits(c.f[ac.rs2])
				}
				if pn == st.page && st.epoch == mmu.Epoch() && off+8 <= sitePageSize {
					binary.LittleEndian.PutUint64(st.data[off:off+8], val)
				} else if d := c.storeMiss8(st, sb, ac.idx, addr, pn, off, val); d != t3Cont {
					return d
				}
				if !c.monEmpty {
					c.e.Mon.OnStore(c.cpu.TID, mmu.Translate(addr))
				}
			}
			if ac.post.on {
				x[ac.post.rd] = x[ac.post.rs] + ac.post.imm
			}
		}
		{
			ac := &accs[1]
			if ac.pre.on {
				x[ac.pre.rd] = x[ac.pre.rs] + ac.pre.imm
			}
			addr := x[ac.rs1] + ac.imm
			pn := addr >> shift
			off := addr & mask
			st := ac.st
			if ac.load {
				var v uint64
				if pn == st.page && st.epoch == mmu.Epoch() && off+8 <= sitePageSize {
					v = binary.LittleEndian.Uint64(st.data[off : off+8])
				} else {
					var d int32
					if v, d = c.loadMiss8(st, sb, ac.idx, addr, pn, off); d != t3Cont {
						return d
					}
				}
				if ac.fp {
					c.f[ac.rd] = math.Float64frombits(v)
				} else {
					x[ac.rd] = v
				}
			} else {
				val := x[ac.rs2]
				if ac.fp {
					val = math.Float64bits(c.f[ac.rs2])
				}
				if pn == st.page && st.epoch == mmu.Epoch() && off+8 <= sitePageSize {
					binary.LittleEndian.PutUint64(st.data[off:off+8], val)
				} else if d := c.storeMiss8(st, sb, ac.idx, addr, pn, off, val); d != t3Cont {
					return d
				}
				if !c.monEmpty {
					c.e.Mon.OnStore(c.cpu.TID, mmu.Translate(addr))
				}
			}
			if ac.post.on {
				x[ac.post.rd] = x[ac.post.rs] + ac.post.imm
			}
		}
		if nacc > 2 {
			{
				ac := &accs[2]
				if ac.pre.on {
					x[ac.pre.rd] = x[ac.pre.rs] + ac.pre.imm
				}
				addr := x[ac.rs1] + ac.imm
				pn := addr >> shift
				off := addr & mask
				st := ac.st
				if ac.load {
					var v uint64
					if pn == st.page && st.epoch == mmu.Epoch() && off+8 <= sitePageSize {
						v = binary.LittleEndian.Uint64(st.data[off : off+8])
					} else {
						var d int32
						if v, d = c.loadMiss8(st, sb, ac.idx, addr, pn, off); d != t3Cont {
							return d
						}
					}
					if ac.fp {
						c.f[ac.rd] = math.Float64frombits(v)
					} else {
						x[ac.rd] = v
					}
				} else {
					val := x[ac.rs2]
					if ac.fp {
						val = math.Float64bits(c.f[ac.rs2])
					}
					if pn == st.page && st.epoch == mmu.Epoch() && off+8 <= sitePageSize {
						binary.LittleEndian.PutUint64(st.data[off:off+8], val)
					} else if d := c.storeMiss8(st, sb, ac.idx, addr, pn, off, val); d != t3Cont {
						return d
					}
					if !c.monEmpty {
						c.e.Mon.OnStore(c.cpu.TID, mmu.Translate(addr))
					}
				}
				if ac.post.on {
					x[ac.post.rd] = x[ac.post.rs] + ac.post.imm
				}
			}
			if nacc > 3 {
				{
					ac := &accs[3]
					if ac.pre.on {
						x[ac.pre.rd] = x[ac.pre.rs] + ac.pre.imm
					}
					addr := x[ac.rs1] + ac.imm
					pn := addr >> shift
					off := addr & mask
					st := ac.st
					if ac.load {
						var v uint64
						if pn == st.page && st.epoch == mmu.Epoch() && off+8 <= sitePageSize {
							v = binary.LittleEndian.Uint64(st.data[off : off+8])
						} else {
							var d int32
							if v, d = c.loadMiss8(st, sb, ac.idx, addr, pn, off); d != t3Cont {
								return d
							}
						}
						if ac.fp {
							c.f[ac.rd] = math.Float64frombits(v)
						} else {
							x[ac.rd] = v
						}
					} else {
						val := x[ac.rs2]
						if ac.fp {
							val = math.Float64bits(c.f[ac.rs2])
						}
						if pn == st.page && st.epoch == mmu.Epoch() && off+8 <= sitePageSize {
							binary.LittleEndian.PutUint64(st.data[off:off+8], val)
						} else if d := c.storeMiss8(st, sb, ac.idx, addr, pn, off, val); d != t3Cont {
							return d
						}
						if !c.monEmpty {
							c.e.Mon.OnStore(c.cpu.TID, mmu.Translate(addr))
						}
					}
					if ac.post.on {
						x[ac.post.rd] = x[ac.post.rs] + ac.post.imm
					}
				}
				if nacc > 4 {
					{
						ac := &accs[4]
						if ac.pre.on {
							x[ac.pre.rd] = x[ac.pre.rs] + ac.pre.imm
						}
						addr := x[ac.rs1] + ac.imm
						pn := addr >> shift
						off := addr & mask
						st := ac.st
						if ac.load {
							var v uint64
							if pn == st.page && st.epoch == mmu.Epoch() && off+8 <= sitePageSize {
								v = binary.LittleEndian.Uint64(st.data[off : off+8])
							} else {
								var d int32
								if v, d = c.loadMiss8(st, sb, ac.idx, addr, pn, off); d != t3Cont {
									return d
								}
							}
							if ac.fp {
								c.f[ac.rd] = math.Float64frombits(v)
							} else {
								x[ac.rd] = v
							}
						} else {
							val := x[ac.rs2]
							if ac.fp {
								val = math.Float64bits(c.f[ac.rs2])
							}
							if pn == st.page && st.epoch == mmu.Epoch() && off+8 <= sitePageSize {
								binary.LittleEndian.PutUint64(st.data[off:off+8], val)
							} else if d := c.storeMiss8(st, sb, ac.idx, addr, pn, off, val); d != t3Cont {
								return d
							}
							if !c.monEmpty {
								c.e.Mon.OnStore(c.cpu.TID, mmu.Translate(addr))
							}
						}
						if ac.post.on {
							x[ac.post.rd] = x[ac.post.rs] + ac.post.imm
						}
					}
					if nacc > 5 {
						{
							ac := &accs[5]
							if ac.pre.on {
								x[ac.pre.rd] = x[ac.pre.rs] + ac.pre.imm
							}
							addr := x[ac.rs1] + ac.imm
							pn := addr >> shift
							off := addr & mask
							st := ac.st
							if ac.load {
								var v uint64
								if pn == st.page && st.epoch == mmu.Epoch() && off+8 <= sitePageSize {
									v = binary.LittleEndian.Uint64(st.data[off : off+8])
								} else {
									var d int32
									if v, d = c.loadMiss8(st, sb, ac.idx, addr, pn, off); d != t3Cont {
										return d
									}
								}
								if ac.fp {
									c.f[ac.rd] = math.Float64frombits(v)
								} else {
									x[ac.rd] = v
								}
							} else {
								val := x[ac.rs2]
								if ac.fp {
									val = math.Float64bits(c.f[ac.rs2])
								}
								if pn == st.page && st.epoch == mmu.Epoch() && off+8 <= sitePageSize {
									binary.LittleEndian.PutUint64(st.data[off:off+8], val)
								} else if d := c.storeMiss8(st, sb, ac.idx, addr, pn, off, val); d != t3Cont {
									return d
								}
								if !c.monEmpty {
									c.e.Mon.OnStore(c.cpu.TID, mmu.Translate(addr))
								}
							}
							if ac.post.on {
								x[ac.post.rd] = x[ac.post.rs] + ac.post.imm
							}
						}
					}
				}
			}
		}
		return next(c)
	}
}

// compileMem dispatches a (possibly fused) memory unit to the
// width-specialized compilers.
func (e *Engine) compileMem(sb *superblock, i int, pre, post addiFuse, next t3op) t3op {
	switch sb.ops[i].kind {
	case uLoad:
		return e.compileLoad(sb, i, pre, post, next)
	case uStore:
		return e.compileStore(sb, i, pre, post, next)
	case uFLoad:
		return e.compileFLoad(sb, i, pre, post, next)
	default:
		return e.compileFStore(sb, i, pre, post, next)
	}
}

// compileAddiPair fuses two adjacent addis into one closure.
func compileAddiPair(u1, u2 *uop, next t3op) t3op {
	rd1, rs1, i1 := u1.rd, u1.rs1, uint64(u1.imm)
	rd2, rs2, i2 := u2.rd, u2.rs1, uint64(u2.imm)
	return func(c *t3ctx) int32 {
		x := c.x
		x[rd1] = x[rs1] + i1
		x[rd2] = x[rs2] + i2
		return next(c)
	}
}

// addiMidable gates the planner's addi absorption to exactly the op kinds
// compileAddiMid implements.
func addiMidable(k uopKind) bool {
	switch k {
	case uAdd, uSub, uMul, uAnd, uOr, uXor, uSltu, uSlt, uSlli, uSrli, uSrai,
		uAndi, uOri, uXori, uLi, uFAdd, uFSub, uFMul, uFDiv, uFMovImm, uFMv:
		return true
	}
	return false
}

// compileAddiMid fuses an addi into the following ALU/FP closure: the addi
// retires first (program order), then the op — one call for the hottest
// digram the uopseq profiles mine (`addi` precedes nearly everything in
// loop bodies: induction bump then compute).
func compileAddiMid(a, b *uop, next t3op) t3op {
	ard, ars, ai := a.rd, a.rs1, uint64(a.imm)
	rd, rs1, rs2 := b.rd, b.rs1, b.rs2
	imm := b.imm
	switch b.kind {
	case uAdd:
		return func(c *t3ctx) int32 { x := c.x; x[ard] = x[ars] + ai; x[rd] = x[rs1] + x[rs2]; return next(c) }
	case uSub:
		return func(c *t3ctx) int32 { x := c.x; x[ard] = x[ars] + ai; x[rd] = x[rs1] - x[rs2]; return next(c) }
	case uMul:
		return func(c *t3ctx) int32 { x := c.x; x[ard] = x[ars] + ai; x[rd] = x[rs1] * x[rs2]; return next(c) }
	case uAnd:
		return func(c *t3ctx) int32 { x := c.x; x[ard] = x[ars] + ai; x[rd] = x[rs1] & x[rs2]; return next(c) }
	case uOr:
		return func(c *t3ctx) int32 { x := c.x; x[ard] = x[ars] + ai; x[rd] = x[rs1] | x[rs2]; return next(c) }
	case uXor:
		return func(c *t3ctx) int32 { x := c.x; x[ard] = x[ars] + ai; x[rd] = x[rs1] ^ x[rs2]; return next(c) }
	case uSltu:
		return func(c *t3ctx) int32 { x := c.x; x[ard] = x[ars] + ai; x[rd] = b2u(x[rs1] < x[rs2]); return next(c) }
	case uSlt:
		return func(c *t3ctx) int32 {
			x := c.x
			x[ard] = x[ars] + ai
			x[rd] = b2u(int64(x[rs1]) < int64(x[rs2]))
			return next(c)
		}
	case uSlli:
		sh := uint64(imm) & 63
		return func(c *t3ctx) int32 { x := c.x; x[ard] = x[ars] + ai; x[rd] = x[rs1] << sh; return next(c) }
	case uSrli:
		sh := uint64(imm) & 63
		return func(c *t3ctx) int32 { x := c.x; x[ard] = x[ars] + ai; x[rd] = x[rs1] >> sh; return next(c) }
	case uSrai:
		sh := uint64(imm) & 63
		return func(c *t3ctx) int32 {
			x := c.x
			x[ard] = x[ars] + ai
			x[rd] = uint64(int64(x[rs1]) >> sh)
			return next(c)
		}
	case uAndi:
		ui := uint64(imm)
		return func(c *t3ctx) int32 { x := c.x; x[ard] = x[ars] + ai; x[rd] = x[rs1] & ui; return next(c) }
	case uOri:
		ui := uint64(imm)
		return func(c *t3ctx) int32 { x := c.x; x[ard] = x[ars] + ai; x[rd] = x[rs1] | ui; return next(c) }
	case uXori:
		ui := uint64(imm)
		return func(c *t3ctx) int32 { x := c.x; x[ard] = x[ars] + ai; x[rd] = x[rs1] ^ ui; return next(c) }
	case uLi:
		v := b.val
		return func(c *t3ctx) int32 { x := c.x; x[ard] = x[ars] + ai; x[rd] = v; return next(c) }
	case uFAdd:
		return func(c *t3ctx) int32 {
			c.x[ard] = c.x[ars] + ai
			f := c.f
			f[rd] = f[rs1] + f[rs2]
			return next(c)
		}
	case uFSub:
		return func(c *t3ctx) int32 {
			c.x[ard] = c.x[ars] + ai
			f := c.f
			f[rd] = f[rs1] - f[rs2]
			return next(c)
		}
	case uFMul:
		return func(c *t3ctx) int32 {
			c.x[ard] = c.x[ars] + ai
			f := c.f
			f[rd] = f[rs1] * f[rs2]
			return next(c)
		}
	case uFDiv:
		return func(c *t3ctx) int32 {
			c.x[ard] = c.x[ars] + ai
			f := c.f
			f[rd] = f[rs1] / f[rs2]
			return next(c)
		}
	case uFMovImm:
		v := math.Float64frombits(b.val)
		return func(c *t3ctx) int32 { c.x[ard] = c.x[ars] + ai; c.f[rd] = v; return next(c) }
	case uFMv:
		return func(c *t3ctx) int32 { c.x[ard] = c.x[ars] + ai; c.f[rd] = c.f[rs1]; return next(c) }
	}
	return nil
}

// compileMid compiles one straight-line (non-boundary) uop. All closures
// capture their operands at compile time and allocate nothing at
// execution time.
func (e *Engine) compileMid(sb *superblock, i int, next t3op) t3op {
	u := &sb.ops[i]
	rd, rs1, rs2 := u.rd, u.rs1, u.rs2
	imm := u.imm
	switch u.kind {
	case uNop:
		return next

	case uAdd:
		return func(c *t3ctx) int32 { x := c.x; x[rd] = x[rs1] + x[rs2]; return next(c) }
	case uSub:
		return func(c *t3ctx) int32 { x := c.x; x[rd] = x[rs1] - x[rs2]; return next(c) }
	case uMul:
		return func(c *t3ctx) int32 { x := c.x; x[rd] = x[rs1] * x[rs2]; return next(c) }
	case uDiv:
		return func(c *t3ctx) int32 {
			x := c.x
			x[rd] = uint64(sdiv(int64(x[rs1]), int64(x[rs2])))
			return next(c)
		}
	case uDivU:
		return func(c *t3ctx) int32 {
			x := c.x
			if x[rs2] == 0 {
				x[rd] = ^uint64(0)
			} else {
				x[rd] = x[rs1] / x[rs2]
			}
			return next(c)
		}
	case uRem:
		return func(c *t3ctx) int32 {
			x := c.x
			x[rd] = uint64(srem(int64(x[rs1]), int64(x[rs2])))
			return next(c)
		}
	case uRemU:
		return func(c *t3ctx) int32 {
			x := c.x
			if x[rs2] == 0 {
				x[rd] = x[rs1]
			} else {
				x[rd] = x[rs1] % x[rs2]
			}
			return next(c)
		}
	case uAnd:
		return func(c *t3ctx) int32 { x := c.x; x[rd] = x[rs1] & x[rs2]; return next(c) }
	case uOr:
		return func(c *t3ctx) int32 { x := c.x; x[rd] = x[rs1] | x[rs2]; return next(c) }
	case uXor:
		return func(c *t3ctx) int32 { x := c.x; x[rd] = x[rs1] ^ x[rs2]; return next(c) }
	case uSll:
		return func(c *t3ctx) int32 { x := c.x; x[rd] = x[rs1] << (x[rs2] & 63); return next(c) }
	case uSrl:
		return func(c *t3ctx) int32 { x := c.x; x[rd] = x[rs1] >> (x[rs2] & 63); return next(c) }
	case uSra:
		return func(c *t3ctx) int32 {
			x := c.x
			x[rd] = uint64(int64(x[rs1]) >> (x[rs2] & 63))
			return next(c)
		}
	case uSlt:
		return func(c *t3ctx) int32 {
			x := c.x
			x[rd] = b2u(int64(x[rs1]) < int64(x[rs2]))
			return next(c)
		}
	case uSltu:
		return func(c *t3ctx) int32 { x := c.x; x[rd] = b2u(x[rs1] < x[rs2]); return next(c) }

	case uAddi:
		ui := uint64(imm)
		return func(c *t3ctx) int32 { x := c.x; x[rd] = x[rs1] + ui; return next(c) }
	case uAndi:
		ui := uint64(imm)
		return func(c *t3ctx) int32 { x := c.x; x[rd] = x[rs1] & ui; return next(c) }
	case uOri:
		ui := uint64(imm)
		return func(c *t3ctx) int32 { x := c.x; x[rd] = x[rs1] | ui; return next(c) }
	case uXori:
		ui := uint64(imm)
		return func(c *t3ctx) int32 { x := c.x; x[rd] = x[rs1] ^ ui; return next(c) }
	case uSlli:
		sh := uint64(imm) & 63
		return func(c *t3ctx) int32 { x := c.x; x[rd] = x[rs1] << sh; return next(c) }
	case uSrli:
		sh := uint64(imm) & 63
		return func(c *t3ctx) int32 { x := c.x; x[rd] = x[rs1] >> sh; return next(c) }
	case uSrai:
		sh := uint64(imm) & 63
		return func(c *t3ctx) int32 {
			x := c.x
			x[rd] = uint64(int64(x[rs1]) >> sh)
			return next(c)
		}
	case uSlti:
		return func(c *t3ctx) int32 {
			x := c.x
			x[rd] = b2u(int64(x[rs1]) < imm)
			return next(c)
		}
	case uLi:
		v := u.val
		return func(c *t3ctx) int32 { c.x[rd] = v; return next(c) }

	case uLoad:
		return e.compileLoad(sb, i, addiFuse{}, addiFuse{}, next)
	case uStore:
		return e.compileStore(sb, i, addiFuse{}, addiFuse{}, next)
	case uFLoad:
		return e.compileFLoad(sb, i, addiFuse{}, addiFuse{}, next)
	case uFStore:
		return e.compileFStore(sb, i, addiFuse{}, addiFuse{}, next)

	case uSanRead:
		size := int(u.size)
		pc := u.pc
		return func(c *t3ctx) int32 {
			if s := c.e.San; s != nil {
				addr := c.x[rs1] + uint64(imm)
				s.OnLoad(c.cpu.TID, c.e.Mem.Translate(addr), size, pc)
			}
			return next(c)
		}
	case uSanWrite:
		size := int(u.size)
		pc := u.pc
		return func(c *t3ctx) int32 {
			if s := c.e.San; s != nil {
				addr := c.x[rs1] + uint64(imm)
				s.OnStore(c.cpu.TID, c.e.Mem.Translate(addr), size, pc)
			}
			return next(c)
		}
	case uFence:
		return func(c *t3ctx) int32 {
			if s := c.e.San; s != nil {
				s.OnFence(c.cpu.TID)
			}
			return next(c)
		}

	case uLink:
		v := u.val
		if rd == 0 {
			return next
		}
		return func(c *t3ctx) int32 { c.x[rd] = v; return next(c) }

	case uFAdd:
		return func(c *t3ctx) int32 { f := c.f; f[rd] = f[rs1] + f[rs2]; return next(c) }
	case uFSub:
		return func(c *t3ctx) int32 { f := c.f; f[rd] = f[rs1] - f[rs2]; return next(c) }
	case uFMul:
		return func(c *t3ctx) int32 { f := c.f; f[rd] = f[rs1] * f[rs2]; return next(c) }
	case uFDiv:
		return func(c *t3ctx) int32 { f := c.f; f[rd] = f[rs1] / f[rs2]; return next(c) }
	case uFMin:
		return func(c *t3ctx) int32 { f := c.f; f[rd] = math.Min(f[rs1], f[rs2]); return next(c) }
	case uFMax:
		return func(c *t3ctx) int32 { f := c.f; f[rd] = math.Max(f[rs1], f[rs2]); return next(c) }
	case uFSqrt:
		return func(c *t3ctx) int32 { f := c.f; f[rd] = math.Sqrt(f[rs1]); return next(c) }
	case uFNeg:
		return func(c *t3ctx) int32 { f := c.f; f[rd] = -f[rs1]; return next(c) }
	case uFAbs:
		return func(c *t3ctx) int32 { f := c.f; f[rd] = math.Abs(f[rs1]); return next(c) }
	case uFExp:
		return func(c *t3ctx) int32 { f := c.f; f[rd] = math.Exp(f[rs1]); return next(c) }
	case uFLn:
		return func(c *t3ctx) int32 { f := c.f; f[rd] = math.Log(f[rs1]); return next(c) }
	case uFMovImm:
		v := math.Float64frombits(u.val)
		return func(c *t3ctx) int32 { c.f[rd] = v; return next(c) }
	case uFMv:
		return func(c *t3ctx) int32 { f := c.f; f[rd] = f[rs1]; return next(c) }
	case uFMvXD:
		return func(c *t3ctx) int32 { c.x[rd] = math.Float64bits(c.f[rs1]); return next(c) }
	case uFMvDX:
		return func(c *t3ctx) int32 { c.f[rd] = math.Float64frombits(c.x[rs1]); return next(c) }
	case uFCvtDL:
		return func(c *t3ctx) int32 { c.f[rd] = float64(int64(c.x[rs1])); return next(c) }
	case uFCvtLD:
		return func(c *t3ctx) int32 { c.x[rd] = uint64(int64(c.f[rs1])); return next(c) }
	case uFEq:
		return func(c *t3ctx) int32 { c.x[rd] = b2u(c.f[rs1] == c.f[rs2]); return next(c) }
	case uFLt:
		return func(c *t3ctx) int32 { c.x[rd] = b2u(c.f[rs1] < c.f[rs2]); return next(c) }
	case uFLe:
		return func(c *t3ctx) int32 { c.x[rd] = b2u(c.f[rs1] <= c.f[rs2]); return next(c) }
	}
	return nil
}

// compileLoad builds a width/sign-specialized load closure with the inline
// softmmu fast path and the per-site TLB line baked in.
func (e *Engine) compileLoad(sb *superblock, i int, pre, post addiFuse, next t3op) t3op {
	u := &sb.ops[i]
	rd, rs1, imm := u.rd, u.rs1, uint64(u.imm)
	shift, mask := e.pageShift, e.pageMask
	mmu := e.Mem
	switch {
	case rd == 0 || u.size < 4:
		// Rare shapes share one generic closure (still TLB-accelerated).
		size, sh := u.size, u.sh
		return func(c *t3ctx) int32 {
			if pre.on {
				x := c.x
				x[pre.rd] = x[pre.rs] + pre.imm
			}
			en := c.e
			addr := c.x[rs1] + imm
			pn := addr >> shift
			off := addr & mask
			var v uint64
			if ln := &en.rdTLB[pn&(accelTLBSize-1)]; ln.PageNo == pn &&
				ln.Epoch == mmu.Epoch() && off+uint64(size) <= mask+1 {
				v = loadLE(ln.Data[off:], size)
			} else {
				var fault *mem.Fault
				v, fault = en.slowLoad(addr, size)
				if fault != nil {
					return c.pageFault(sb, i, fault)
				}
			}
			if sh != 0 {
				v = uint64(int64(v<<sh) >> sh)
			}
			wr(c.x, rd, v)
			if post.on {
				x := c.x
				x[post.rd] = x[post.rs] + post.imm
			}
			return next(c)
		}
	case u.size == 8:
		st := &siteTLB{page: ^uint64(0)}
		return func(c *t3ctx) int32 {
			if pre.on {
				x := c.x
				x[pre.rd] = x[pre.rs] + pre.imm
			}
			addr := c.x[rs1] + imm
			pn := addr >> shift
			off := addr & mask
			var v uint64
			if pn == st.page && st.epoch == mmu.Epoch() && off+8 <= sitePageSize {
				v = binary.LittleEndian.Uint64(st.data[off : off+8])
			} else {
				var d int32
				if v, d = c.loadMiss8(st, sb, i, addr, pn, off); d != t3Cont {
					return d
				}
			}
			c.x[rd] = v
			if post.on {
				x := c.x
				x[post.rd] = x[post.rs] + post.imm
			}
			return next(c)
		}
	case u.sh != 0: // LW: signed 32-bit
		st := &siteTLB{page: ^uint64(0)}
		return func(c *t3ctx) int32 {
			if pre.on {
				x := c.x
				x[pre.rd] = x[pre.rs] + pre.imm
			}
			addr := c.x[rs1] + imm
			pn := addr >> shift
			off := addr & mask
			var v uint64
			if pn == st.page && st.epoch == mmu.Epoch() && off+4 <= sitePageSize {
				v = uint64(binary.LittleEndian.Uint32(st.data[off : off+4]))
			} else {
				var d int32
				if v, d = c.loadMiss4(st, sb, i, addr, pn, off); d != t3Cont {
					return d
				}
			}
			c.x[rd] = uint64(int64(int32(uint32(v))))
			if post.on {
				x := c.x
				x[post.rd] = x[post.rs] + post.imm
			}
			return next(c)
		}
	default: // LWU
		st := &siteTLB{page: ^uint64(0)}
		return func(c *t3ctx) int32 {
			if pre.on {
				x := c.x
				x[pre.rd] = x[pre.rs] + pre.imm
			}
			addr := c.x[rs1] + imm
			pn := addr >> shift
			off := addr & mask
			var v uint64
			if pn == st.page && st.epoch == mmu.Epoch() && off+4 <= sitePageSize {
				v = uint64(binary.LittleEndian.Uint32(st.data[off : off+4]))
			} else {
				var d int32
				if v, d = c.loadMiss4(st, sb, i, addr, pn, off); d != t3Cont {
					return d
				}
			}
			c.x[rd] = v
			if post.on {
				x := c.x
				x[post.rd] = x[post.rs] + post.imm
			}
			return next(c)
		}
	}
}

// compileStore builds a width-specialized store closure with the inline
// softmmu fast path, the per-site TLB line, and the hoisted LL/SC-monitor
// emptiness check.
func (e *Engine) compileStore(sb *superblock, i int, pre, post addiFuse, next t3op) t3op {
	u := &sb.ops[i]
	rs1, rs2, imm := u.rs1, u.rs2, uint64(u.imm)
	shift, mask := e.pageShift, e.pageMask
	mmu := e.Mem
	switch u.size {
	case 8:
		st := &siteTLB{page: ^uint64(0)}
		return func(c *t3ctx) int32 {
			if pre.on {
				x := c.x
				x[pre.rd] = x[pre.rs] + pre.imm
			}
			addr := c.x[rs1] + imm
			pn := addr >> shift
			off := addr & mask
			if pn == st.page && st.epoch == mmu.Epoch() && off+8 <= sitePageSize {
				binary.LittleEndian.PutUint64(st.data[off:off+8], c.x[rs2])
			} else if d := c.storeMiss8(st, sb, i, addr, pn, off, c.x[rs2]); d != t3Cont {
				return d
			}
			if !c.monEmpty {
				c.e.Mon.OnStore(c.cpu.TID, mmu.Translate(addr))
			}
			if post.on {
				x := c.x
				x[post.rd] = x[post.rs] + post.imm
			}
			return next(c)
		}
	case 4:
		st := &siteTLB{page: ^uint64(0)}
		return func(c *t3ctx) int32 {
			if pre.on {
				x := c.x
				x[pre.rd] = x[pre.rs] + pre.imm
			}
			addr := c.x[rs1] + imm
			pn := addr >> shift
			off := addr & mask
			if pn == st.page && st.epoch == mmu.Epoch() && off+4 <= sitePageSize {
				binary.LittleEndian.PutUint32(st.data[off:off+4], uint32(c.x[rs2]))
			} else if d := c.storeMiss4(st, sb, i, addr, pn, off, c.x[rs2]); d != t3Cont {
				return d
			}
			if !c.monEmpty {
				c.e.Mon.OnStore(c.cpu.TID, mmu.Translate(addr))
			}
			if post.on {
				x := c.x
				x[post.rd] = x[post.rs] + post.imm
			}
			return next(c)
		}
	default:
		size := u.size
		return func(c *t3ctx) int32 {
			if pre.on {
				x := c.x
				x[pre.rd] = x[pre.rs] + pre.imm
			}
			en := c.e
			addr := c.x[rs1] + imm
			pn := addr >> shift
			off := addr & mask
			if ln := &en.wrTLB[pn&(accelTLBSize-1)]; ln.PageNo == pn &&
				ln.Epoch == mmu.Epoch() && off+uint64(size) <= mask+1 {
				storeLE(ln.Data[off:], c.x[rs2], size)
			} else if fault := en.slowStore(addr, c.x[rs2], size); fault != nil {
				return c.pageFault(sb, i, fault)
			}
			if !c.monEmpty {
				en.Mon.OnStore(c.cpu.TID, mmu.Translate(addr))
			}
			if post.on {
				x := c.x
				x[post.rd] = x[post.rs] + post.imm
			}
			return next(c)
		}
	}
}

func (e *Engine) compileFLoad(sb *superblock, i int, pre, post addiFuse, next t3op) t3op {
	u := &sb.ops[i]
	rd, rs1, imm := u.rd, u.rs1, uint64(u.imm)
	shift, mask := e.pageShift, e.pageMask
	mmu := e.Mem
	st := &siteTLB{page: ^uint64(0)}
	return func(c *t3ctx) int32 {
		if pre.on {
			x := c.x
			x[pre.rd] = x[pre.rs] + pre.imm
		}
		addr := c.x[rs1] + imm
		pn := addr >> shift
		off := addr & mask
		var v uint64
		if pn == st.page && st.epoch == mmu.Epoch() && off+8 <= sitePageSize {
			v = binary.LittleEndian.Uint64(st.data[off : off+8])
		} else {
			var d int32
			if v, d = c.loadMiss8(st, sb, i, addr, pn, off); d != t3Cont {
				return d
			}
		}
		c.f[rd] = math.Float64frombits(v)
		if post.on {
			x := c.x
			x[post.rd] = x[post.rs] + post.imm
		}
		return next(c)
	}
}

func (e *Engine) compileFStore(sb *superblock, i int, pre, post addiFuse, next t3op) t3op {
	u := &sb.ops[i]
	rs1, rs2, imm := u.rs1, u.rs2, uint64(u.imm)
	shift, mask := e.pageShift, e.pageMask
	mmu := e.Mem
	st := &siteTLB{page: ^uint64(0)}
	return func(c *t3ctx) int32 {
		if pre.on {
			x := c.x
			x[pre.rd] = x[pre.rs] + pre.imm
		}
		addr := c.x[rs1] + imm
		pn := addr >> shift
		off := addr & mask
		if pn == st.page && st.epoch == mmu.Epoch() && off+8 <= sitePageSize {
			binary.LittleEndian.PutUint64(st.data[off:off+8], math.Float64bits(c.f[rs2]))
		} else if d := c.storeMiss8(st, sb, i, addr, pn, off, math.Float64bits(c.f[rs2])); d != t3Cont {
			return d
		}
		if !c.monEmpty {
			c.e.Mon.OnStore(c.cpu.TID, mmu.Translate(addr))
		}
		if post.on {
			x := c.x
			x[post.rd] = x[post.rs] + post.imm
		}
		return next(c)
	}
}

// negBranch returns the branch op with the opposite outcome.
func negBranch(op isa.Op) isa.Op {
	switch op {
	case isa.OpBEQ:
		return isa.OpBNE
	case isa.OpBNE:
		return isa.OpBEQ
	case isa.OpBLT:
		return isa.OpBGE
	case isa.OpBGE:
		return isa.OpBLT
	case isa.OpBLTU:
		return isa.OpBGEU
	default: // OpBGEU
		return isa.OpBLTU
	}
}

// compileTail compiles a segment-boundary uop. Fall-through outcomes
// (guard passes, successful atomics, hints) chain into next; everything
// else returns a trampoline disposition.
func (e *Engine) compileTail(sb *superblock, i int, next t3op) t3op {
	u := &sb.ops[i]
	rd, rs1, rs2 := u.rd, u.rs1, u.rs2
	pc, npc, npc2 := u.pc, u.npc, u.npc2
	exit, exit2 := u.exit, u.exit2
	switch u.kind {
	case uGuard:
		// The trace stays on the closure chain while the branch goes the
		// expected way; fold the polarity into the comparison so the exit
		// condition is a single specialized compare.
		xop := u.bop
		if u.expectTaken {
			xop = negBranch(xop)
		}
		switch xop {
		case isa.OpBEQ:
			return func(c *t3ctx) int32 {
				if c.x[rs1] == c.x[rs2] {
					c.cpu.PC = npc
					return c.chainTo(c.e.exitVia(sb, exit))
				}
				return next(c)
			}
		case isa.OpBNE:
			return func(c *t3ctx) int32 {
				if c.x[rs1] != c.x[rs2] {
					c.cpu.PC = npc
					return c.chainTo(c.e.exitVia(sb, exit))
				}
				return next(c)
			}
		case isa.OpBLT:
			return func(c *t3ctx) int32 {
				if int64(c.x[rs1]) < int64(c.x[rs2]) {
					c.cpu.PC = npc
					return c.chainTo(c.e.exitVia(sb, exit))
				}
				return next(c)
			}
		case isa.OpBGE:
			return func(c *t3ctx) int32 {
				if int64(c.x[rs1]) >= int64(c.x[rs2]) {
					c.cpu.PC = npc
					return c.chainTo(c.e.exitVia(sb, exit))
				}
				return next(c)
			}
		case isa.OpBLTU:
			return func(c *t3ctx) int32 {
				if c.x[rs1] < c.x[rs2] {
					c.cpu.PC = npc
					return c.chainTo(c.e.exitVia(sb, exit))
				}
				return next(c)
			}
		default: // OpBGEU
			return func(c *t3ctx) int32 {
				if c.x[rs1] >= c.x[rs2] {
					c.cpu.PC = npc
					return c.chainTo(c.e.exitVia(sb, exit))
				}
				return next(c)
			}
		}

	case uFusedCmpGuard:
		// rd = slt(rs1, rs2); exit when rd lands on the off-trace value.
		takenAt0 := u.bop == isa.OpBEQ // beqz taken when cmp == 0
		exitVal := uint64(0)
		if takenAt0 == u.expectTaken {
			exitVal = 1
		}
		if u.cmpU {
			return func(c *t3ctx) int32 {
				v := b2u(c.x[rs1] < c.x[rs2])
				c.x[rd] = v
				if v == exitVal {
					c.cpu.PC = npc
					return c.chainTo(c.e.exitVia(sb, exit))
				}
				return next(c)
			}
		}
		return func(c *t3ctx) int32 {
			v := b2u(int64(c.x[rs1]) < int64(c.x[rs2]))
			c.x[rd] = v
			if v == exitVal {
				c.cpu.PC = npc
				return c.chainTo(c.e.exitVia(sb, exit))
			}
			return next(c)
		}

	case uBranchExit:
		bop := u.bop
		return func(c *t3ctx) int32 {
			if takeBranch(bop, c.x[rs1], c.x[rs2]) {
				c.cpu.PC = npc
				return c.chainTo(c.e.exitVia(sb, exit))
			}
			c.cpu.PC = npc2
			return c.chainTo(c.e.exitVia(sb, exit2))
		}

	case uFusedCmpExit:
		takenAt1 := u.bop == isa.OpBNE // bnez taken when cmp == 1
		cmpU := u.cmpU
		return func(c *t3ctx) int32 {
			var v uint64
			if cmpU {
				v = b2u(c.x[rs1] < c.x[rs2])
			} else {
				v = b2u(int64(c.x[rs1]) < int64(c.x[rs2]))
			}
			c.x[rd] = v
			if (v == 1) == takenAt1 {
				c.cpu.PC = npc
				return c.chainTo(c.e.exitVia(sb, exit))
			}
			c.cpu.PC = npc2
			return c.chainTo(c.e.exitVia(sb, exit2))
		}

	case uJalExit:
		link := u.val
		if rd == 0 {
			return func(c *t3ctx) int32 {
				c.cpu.PC = npc
				return c.chainTo(c.e.exitVia(sb, exit))
			}
		}
		return func(c *t3ctx) int32 {
			c.x[rd] = link
			c.cpu.PC = npc
			return c.chainTo(c.e.exitVia(sb, exit))
		}

	case uJalrExit:
		imm := uint64(u.imm)
		link := u.val
		return func(c *t3ctx) int32 {
			en := c.e
			target := (c.x[rs1] + imm) &^ 3
			if rd != 0 {
				c.x[rd] = link
			}
			c.cpu.PC = target
			if !en.NoJumpCache && !en.NoCache {
				if h := &en.jc[(target>>2)&(jcSize-1)]; h.pc == target && h.gen == en.gen {
					en.Stats.JumpCacheHits++
					if nsb := h.blk.sb; nsb != nil && nsb.gen == en.gen && *c.spent < c.budget {
						// Tail-entry: stay on the compiled tier when the
						// target is compiled too.
						if nt3 := nsb.t3; nt3 != nil {
							c.sw = nt3
							return t3Switch
						}
					}
					c.next = h.blk
					return t3Exit
				}
			}
			c.next = nil
			return t3Exit
		}

	case uLoopBack:
		return func(c *t3ctx) int32 { return t3Loop }

	case uExit:
		return func(c *t3ctx) int32 {
			c.cpu.PC = npc
			return c.chainTo(c.e.exitVia(sb, exit))
		}

	case uLL:
		return func(c *t3ctx) int32 {
			if d := c.doLL(sb, i); d != t3Cont {
				return d
			}
			return next(c)
		}
	case uSC:
		return func(c *t3ctx) int32 {
			if d := c.doSC(sb, i); d != t3Cont {
				return d
			}
			return next(c)
		}
	case uCAS, uAmoAdd, uAmoSwap:
		return func(c *t3ctx) int32 {
			if d := c.doAmo(sb, i); d != t3Cont {
				return d
			}
			return next(c)
		}

	case uSvcExit:
		return func(c *t3ctx) int32 {
			e := c.e
			e.Stats.Syscalls++
			*c.spent += e.Cost.SyscallNs
			c.cpu.PC = pc + 4
			c.res = Result{Reason: StopSyscall}
			c.stop = true
			return t3Stop
		}

	case uHint:
		group := u.imm
		return func(c *t3ctx) int32 {
			c.cpu.HintGroup = group
			e := c.e
			if e.OnHint != nil {
				e.OnHint(c.cpu.TID, group)
				c.monEmpty = e.Mon.Empty()
				if sb.gen != e.gen {
					// The hook flushed the translation cache: abandon the
					// compiled trace at the next instruction boundary.
					c.cpu.PC = pc + 4
					return t3Demote
				}
			}
			return next(c)
		}

	case uHaltExit:
		return func(c *t3ctx) int32 {
			c.cpu.PC = pc + 4
			c.res = Result{Reason: StopHalt}
			c.stop = true
			return t3Stop
		}
	case uEbreakExit:
		return func(c *t3ctx) int32 {
			c.cpu.PC = pc
			c.res = Result{Reason: StopEBreak}
			c.stop = true
			return t3Stop
		}
	}
	return nil
}

// doLL/doSC/doAmo are the atomic boundary ops. They are rare enough that
// sharing the tier-2 structure through context methods beats duplicating
// it per closure; monEmpty is refreshed exactly like execSuperRun does.
func (c *t3ctx) doLL(sb *superblock, i int) int32 {
	u := &sb.ops[i]
	e := c.e
	mmu := e.Mem
	addr := c.x[u.rs1]
	if addr%8 != 0 {
		return c.alignFault(sb, i, addr)
	}
	v, fault := mmu.Load(addr, 8)
	if fault != nil {
		return c.pageFault(sb, i, fault)
	}
	e.Mon.OnLL(c.cpu.TID, mmu.Translate(addr))
	if e.San != nil {
		e.San.OnAtomic(c.cpu.TID, mmu.Translate(addr), 8, u.pc, false)
	}
	c.monEmpty = false
	wr(c.x, u.rd, v)
	return t3Cont
}

func (c *t3ctx) doSC(sb *superblock, i int) int32 {
	u := &sb.ops[i]
	e := c.e
	mmu := e.Mem
	addr := c.x[u.rs1]
	if addr%8 != 0 {
		return c.alignFault(sb, i, addr)
	}
	taddr := mmu.Translate(addr)
	if mmu.PermOf(mmu.PageOf(taddr)) != mem.PermReadWrite {
		return c.pageFault(sb, i, &mem.Fault{Addr: taddr, Page: mmu.PageOf(taddr), Write: true})
	}
	if e.Mon.ValidateSC(c.cpu.TID, taddr) {
		if fault := mmu.Store(addr, c.x[u.rs2], 8); fault != nil {
			return c.pageFault(sb, i, fault)
		}
		if e.San != nil {
			e.San.OnAtomic(c.cpu.TID, taddr, 8, u.pc, true)
		}
		wr(c.x, u.rd, 0)
	} else {
		if e.San != nil {
			e.San.OnAtomic(c.cpu.TID, taddr, 8, u.pc, false)
		}
		wr(c.x, u.rd, 1)
		if e.StopAtomic {
			c.cpu.PC = u.pc + 4
			c.res = Result{Reason: StopBudget}
			c.stop = true
			return t3Stop
		}
	}
	return t3Cont
}

func (c *t3ctx) doAmo(sb *superblock, i int) int32 {
	u := &sb.ops[i]
	e := c.e
	mmu := e.Mem
	addr := c.x[u.rs1]
	if addr%8 != 0 {
		return c.alignFault(sb, i, addr)
	}
	taddr := mmu.Translate(addr)
	if mmu.PermOf(mmu.PageOf(taddr)) != mem.PermReadWrite {
		return c.pageFault(sb, i, &mem.Fault{Addr: taddr, Page: mmu.PageOf(taddr), Write: true})
	}
	old, fault := mmu.Load(addr, 8)
	if fault != nil {
		return c.pageFault(sb, i, fault)
	}
	var newVal uint64
	doStore := true
	switch u.kind {
	case uCAS:
		newVal = c.x[u.rs2]
		doStore = old == c.x[u.rd]
	case uAmoAdd:
		newVal = old + c.x[u.rs2]
	default: // uAmoSwap
		newVal = c.x[u.rs2]
	}
	if doStore {
		if fault := mmu.Store(addr, newVal, 8); fault != nil {
			return c.pageFault(sb, i, fault)
		}
		if !e.Mon.Empty() {
			e.Mon.OnStore(c.cpu.TID, taddr)
		}
	}
	if e.San != nil {
		e.San.OnAtomic(c.cpu.TID, taddr, 8, u.pc, doStore)
	}
	wr(c.x, u.rd, old)
	if e.StopAtomic && u.kind == uCAS && !doStore {
		c.cpu.PC = u.pc + 4
		c.res = Result{Reason: StopBudget}
		c.stop = true
		return t3Stop
	}
	return t3Cont
}
