package dsm

// Forwarder implements data forwarding (§5.2): the master keeps a
// page-request history per requesting thread (like the Linux VFS read-ahead
// it is modelled on [15], which tracks streams per open file) and, once a
// stream turns sequential, pushes the pages ahead of it to the thread's
// node in Shared state, hiding the fault round trip.
//
// With Adaptive set, each stream self-tunes its trigger and window by AIMD:
// a fault that continues through the pushed window is a hit (additive window
// growth, and a sustained run of hits anneals the trigger down so the stream
// re-arms faster after an interruption); a stream reset that strands pushed
// pages is waste (multiplicative window decrease plus a trigger bump, so a
// random-access phase stops paying for speculation). With Adaptive off the
// behavior is byte-identical to the static forwarder.
type Forwarder struct {
	// Trigger is the number of consecutive sequential requests that arm
	// read-ahead (the paper's micro-benchmark uses 4).
	Trigger int
	// Window is how many pages ahead are pushed once armed.
	Window int
	// Adaptive enables the per-stream AIMD self-tuning above.
	Adaptive bool

	// Hits counts demand faults that continued a stream through its pushed
	// window; Wasted counts pushed pages stranded by a stream reset. Both
	// are maintained unconditionally — they are the feedback scheduler's
	// forwarding sensors.
	Hits   uint64
	Wasted uint64

	// capMult bounds window growth at capMult*Window (0 selects 4, the
	// Linux-readahead-style doubling limit). The feedback scheduler raises
	// or lowers it with the wire layer's delta efficiency.
	capMult int

	streams map[int64]*stream
}

type stream struct {
	lastPage  uint64
	runLen    int
	pushedTo  uint64 // highest page already pushed for this stream
	curWindow int    // current readahead size (doubles up to the cap)

	// Adaptive per-stream overrides; zero means "use the Forwarder field".
	trigger int
	window  int
	hits    int // consecutive continuation hits since the last reset

	// scratch backs the returned prediction slice: Record runs on the
	// remote-fault hot path, and reallocating the window every call costs
	// an allocation per armed fault (pinned at zero by a benchmark test).
	scratch []uint64
}

func (st *stream) effTrigger(f *Forwarder) int {
	if st.trigger > 0 {
		return st.trigger
	}
	return f.Trigger
}

func (st *stream) baseWindow(f *Forwarder) int {
	if st.window > 0 {
		return st.window
	}
	return f.Window
}

// NewForwarder returns a forwarder with the given trigger and window
// (zero values select 4 and 8; the window doubles while a stream holds, up
// to the growth cap, default 4x).
func NewForwarder(trigger, window int) *Forwarder {
	if trigger <= 0 {
		trigger = 4
	}
	if window <= 0 {
		window = 8
	}
	return &Forwarder{Trigger: trigger, Window: window, streams: map[int64]*stream{}}
}

// SetWindowCap bounds window growth at mult*Window (clamped to [1, 16]).
func (f *Forwarder) SetWindowCap(mult int) {
	if mult < 1 {
		mult = 1
	}
	if mult > 16 {
		mult = 16
	}
	f.capMult = mult
}

func (f *Forwarder) windowCap() int {
	mult := f.capMult
	if mult <= 0 {
		mult = 4
	}
	return mult * f.Window
}

// Record notes a demand read by node for page and returns the pages to push
// ahead of the stream (possibly none). A demand fault just past the pushed
// window counts as stream continuation — pushed pages never fault, so the
// next fault lands at pushedTo+1 (like the lookahead marker in the Linux
// readahead framework [15]). The returned slice is valid until the next
// Record call for the same tid (the caller consumes it immediately).
func (f *Forwarder) Record(tid int64, page uint64) []uint64 {
	st := f.streams[tid]
	if st == nil {
		st = &stream{}
		f.streams[tid] = st
	}
	switch {
	case page == st.lastPage+1,
		// A fault inside or just past the pushed window continues the
		// stream: pushed pages don't fault, and a walker outrunning the
		// wire faults on a page whose push is still in flight.
		st.pushedTo > 0 && page > st.lastPage && page <= st.pushedTo+1:
		st.runLen++
		if st.pushedTo > 0 {
			f.Hits++
			st.hits++
			if f.Adaptive {
				// Additive increase; a sustained hit run lowers the trigger
				// so the stream re-arms faster after an interruption.
				w := st.baseWindow(f) + 1
				if lim := f.windowCap(); w > lim {
					w = lim
				}
				st.window = w
				if st.hits%4 == 0 {
					if tr := st.effTrigger(f); tr > 2 {
						st.trigger = tr - 1
					}
				}
			}
		}
	case page == st.lastPage:
		// Re-fault on the same page (e.g. the page was invalidated under the
		// stream): the stream neither advances nor resets, and nothing new is
		// pushed — without this the armed block below would double the window
		// and push ever further ahead on zero progress.
		return nil
	default:
		if st.pushedTo > st.lastPage {
			// The stream broke with pushes in flight past its last fault:
			// those pages were speculated for nothing.
			f.Wasted += st.pushedTo - st.lastPage
			if f.Adaptive {
				// Multiplicative decrease, and demand a longer sequential
				// run before arming again.
				w := st.baseWindow(f) / 2
				if w < 2 {
					w = 2
				}
				st.window = w
				tr := st.effTrigger(f) + 1
				if max := 4 * f.Trigger; tr > max {
					tr = max
				}
				st.trigger = tr
			}
		}
		st.runLen = 1
		st.pushedTo = 0
		st.curWindow = 0
		st.hits = 0
	}
	st.lastPage = page
	if st.runLen < st.effTrigger(f) {
		return nil
	}
	// Armed: push the current window ahead of the demand page, skipping
	// what is already in flight, then grow the window (the doubling of the
	// Linux readahead framework) so a steady stream faults ever more rarely.
	if st.curWindow == 0 {
		st.curWindow = st.baseWindow(f)
	}
	start := page + 1
	if st.pushedTo >= start {
		start = st.pushedTo + 1
	}
	end := page + uint64(st.curWindow)
	if end > st.pushedTo {
		st.pushedTo = end
	}
	if lim := f.windowCap(); st.curWindow < lim {
		st.curWindow *= 2
		if st.curWindow > lim {
			st.curWindow = lim
		}
	}
	if start > end {
		return nil
	}
	out := st.scratch[:0]
	for p := start; p <= end; p++ {
		out = append(out, p)
	}
	st.scratch = out
	return out
}
