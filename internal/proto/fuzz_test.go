package proto

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the wire decoder. Two properties:
//
//  1. Decode never panics and never allocates unboundedly, whatever the
//     input (a malicious or corrupted peer must not be able to kill a node).
//  2. Anything Decode accepts re-encodes to a frame that decodes to the
//     identical message (encode∘decode is a fixpoint), so a message relayed
//     through a node is preserved bit-exactly.
func FuzzDecode(f *testing.F) {
	seeds := []*Msg{
		{Kind: KPageReq, From: 2, To: 0, Page: 0x123, Addr: 0x123456, Write: true, TID: 7},
		{Kind: KPageContent, From: 0, To: 2, Seq: 99, Page: 0x123, Perm: 2, Data: bytes.Repeat([]byte{0xab}, 64)},
		{Kind: KRemap, From: 0, To: 3, Page: 5, Shadows: []uint64{100, 101, 102, 103}},
		{Kind: KSyscallReq, From: 1, To: 0, Seq: 3, TID: 12, Num: 64, Args: [6]uint64{1, 0x2000, 5, 0, 0, 0}},
		{Kind: KThreadStart, From: 0, To: 2, TID: 3, CPU: make([]byte, 64)},
		{Kind: KAck, From: 1, To: 2, Seq: 41},
	}
	for _, m := range seeds {
		f.Add(m.Encode()[4:]) // Decode takes the frame without its length prefix
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // rejecting garbage is fine; panicking is not
		}
		frame := m.Encode()
		m2, err := Decode(frame[4:])
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v\nmsg: %+v", err, m)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("encode/decode not a fixpoint:\nfirst  %+v\nsecond %+v", m, m2)
		}
	})
}

// FuzzDeltaCodec exercises the page-diff codec with adversarial inputs.
// Properties:
//
//  1. Encode∘apply equals the reference transfer (a full-page copy), both
//     against a twin and against the zero page (RLE mode).
//  2. ApplyDelta never panics on arbitrary (truncated, corrupt) deltas, and
//     a rejected delta leaves the destination untouched.
//  3. Any delta that applies is idempotent — a retransmitted duplicate must
//     not corrupt the page.
func FuzzDeltaCodec(f *testing.F) {
	page := func(seed []byte, n int) []byte {
		b := make([]byte, n)
		for i := range b {
			if len(seed) > 0 {
				b[i] = seed[i%len(seed)] ^ byte(i)
			}
		}
		return b
	}
	d0, _ := EncodeDelta(page([]byte{1}, 256), page([]byte{1, 9}, 256), 512)
	d1, _ := EncodeDelta(nil, page([]byte{0, 0, 5}, 256), 512)
	f.Add([]byte{1, 2, 3}, d0)
	f.Add([]byte{7}, d1)
	f.Add([]byte{}, []byte{0x00, 0x00, 0x01, 0x00, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff}, []byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, seed, delta []byte) {
		const ps = 256
		base := page(seed, ps)
		cur := page(append(seed, 0x5a), ps)

		// Roundtrip vs the reference full-page copy.
		if d, ok := EncodeDelta(base, cur, 4*ps); ok {
			got := append([]byte(nil), base...)
			if err := ApplyDelta(got, d); err != nil {
				t.Fatalf("own delta rejected: %v", err)
			}
			if !bytes.Equal(got, cur) {
				t.Fatal("delta roundtrip != full-page copy")
			}
		}
		if d, ok := EncodeDelta(nil, cur, 8*ps); ok {
			got := make([]byte, ps)
			if err := ApplyDelta(got, d); err != nil {
				t.Fatalf("own RLE delta rejected: %v", err)
			}
			if !bytes.Equal(got, cur) {
				t.Fatal("RLE roundtrip != full-page copy")
			}
		}

		// Arbitrary deltas: no panic; rejection leaves dst untouched;
		// acceptance is idempotent.
		dst := append([]byte(nil), base...)
		if err := ApplyDelta(dst, delta); err != nil {
			if !bytes.Equal(dst, base) {
				t.Fatal("rejected delta modified the page")
			}
			return
		}
		once := append([]byte(nil), dst...)
		if err := ApplyDelta(dst, delta); err != nil {
			t.Fatalf("second apply of accepted delta failed: %v", err)
		}
		if !bytes.Equal(dst, once) {
			t.Fatal("delta application not idempotent")
		}
	})
}
