package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestRecordAndDump(t *testing.T) {
	tr := New(10, nil)
	tr.Record(100, EvFault, 1, 5, "page=%#x", 0x20)
	tr.Record(200, EvMsg, 0, -1, "content -> node1")
	tr.Record(300, EvSched, 0, 7, "placed on node 2")
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Kind != EvFault || events[0].TID != 5 || events[0].TimeNs != 100 {
		t.Errorf("event 0 = %+v", events[0])
	}
	var buf bytes.Buffer
	if err := tr.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fault", "page=0x20", "node0", "placed on node 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestLimitAndDropped(t *testing.T) {
	tr := New(2, nil)
	for i := 0; i < 5; i++ {
		tr.Record(int64(i), EvMsg, 0, 0, "m%d", i)
	}
	if len(tr.Events()) != 2 || tr.Dropped() != 3 {
		t.Errorf("events=%d dropped=%d", len(tr.Events()), tr.Dropped())
	}
	var buf bytes.Buffer
	tr.Dump(&buf)
	if !strings.Contains(buf.String(), "3 events dropped") {
		t.Error("dropped note missing")
	}
}

func TestFilterAndSink(t *testing.T) {
	var sink bytes.Buffer
	tr := New(0, &sink)
	tr.Record(1, EvFault, 1, 1, "a")
	tr.Record(2, EvMsg, 1, 1, "b")
	tr.Record(3, EvFault, 2, 2, "c")
	if got := tr.Filter(EvFault); len(got) != 2 {
		t.Errorf("filtered = %d", len(got))
	}
	if strings.Count(sink.String(), "\n") != 3 {
		t.Errorf("sink = %q", sink.String())
	}
	// Nil tracer records are no-ops.
	var nilTr *Tracer
	nilTr.Record(1, EvMsg, 0, 0, "ignored")
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{EvMsg: "msg", EvFault: "fault", EvSyscall: "syscall", EvSched: "sched", EvSplit: "split", Kind(99): "event"} {
		if k.String() != want {
			t.Errorf("%d = %q", k, k.String())
		}
	}
}
