// Hot-trace superblock formation (tier 3 of the translation pipeline).
//
// Per-block execution counters promote hot translation blocks into
// superblocks: traces that follow chained successors across unconditional
// JALs and strongly biased conditional branches, up to a length cap. The
// trace body is lowered to the flat micro-op array in uop.go. A trace that
// re-enters its own head gets a back-edge uop, so hot loops run entirely
// inside one superblock with only a budget check per iteration.
//
// Coherence: a superblock carries the cache generation it was built in.
// ClearCache bumps the generation, which retires every superblock (checked
// at dispatch, at back-edges, and after HINT callbacks) and every chained
// exit pointer — no stale translation can run after a flush.
package tcg

import "dqemu/internal/isa"

const (
	// DefaultHotThreshold is the execution count at which a block is
	// promoted into a superblock.
	DefaultHotThreshold = 50
	// MaxTraceInsns bounds total guest instructions in one superblock.
	MaxTraceInsns = 256
	// MaxTraceBlocks bounds how many translation blocks one trace spans.
	MaxTraceBlocks = 16
	// A conditional branch is followed only when it has executed at least
	// biasMinTotal times and one direction accounts for >= biasNum/biasDen
	// of executions.
	biasMinTotal = 8
	biasNum      = 3
	biasDen      = 4
)

// exitSlot caches the translated block at one static trace exit, the trace
// analog of block.taken/block.fall chaining. Exec fills it lazily via
// Engine.pendingExit; exitVia revalidates against the cache generation.
type exitSlot struct {
	blk *block
}

type superblock struct {
	entry  uint64
	gen    uint64 // cache generation this trace was built in
	ops    []uop
	exits  []exitSlot
	ninsns uint32 // guest instructions lowered into the trace

	// Tier-3 bookkeeping: tier-2 entry count toward closure compilation,
	// the compiled form once promoted, and a sticky flag for superblocks the
	// closure compiler refused (so the attempt is not repeated).
	execs  uint32
	t3     *tier3
	t3fail bool
}

func (e *Engine) hotThreshold() uint32 {
	if e.HotThreshold != 0 {
		return e.HotThreshold
	}
	return DefaultHotThreshold
}

// exitVia resolves the chained block at a trace exit, or records the slot in
// pendingExit so Exec's next lookup fills it.
func (e *Engine) exitVia(sb *superblock, idx int16) *block {
	if idx < 0 || e.NoChain {
		return nil
	}
	s := &sb.exits[idx]
	if b := s.blk; b != nil && b.gen == e.gen {
		return b
	}
	s.blk = nil
	e.pendingExit = s
	return nil
}

// biasDir reports whether a conditional branch with the given taken/fall
// counts is biased enough to follow, and in which direction.
func biasDir(taken, fall uint32) (followTaken, ok bool) {
	total := uint64(taken) + uint64(fall)
	if total < biasMinTotal {
		return false, false
	}
	if uint64(taken)*biasDen >= total*biasNum {
		return true, true
	}
	if uint64(fall)*biasDen >= total*biasNum {
		return false, true
	}
	return false, false
}

func isCondBranch(op isa.Op) bool {
	switch op {
	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
		return true
	}
	return false
}

// buildTrace forms a superblock starting at head, charging translation time
// for every instruction lowered. head must be a current-generation cached
// block.
func (e *Engine) buildTrace(head *block, spent *int64) *superblock {
	sb := &superblock{entry: head.startPC, gen: e.gen}
	visited := map[uint64]bool{head.startPC: true}

	// Translation validation (Engine.Verify): ref accumulates the
	// per-instruction reference lowering — each guest instruction lowered
	// into its own scratch slice, which defeats the cross-instruction ADDI
	// fold and the cmp+branch fusion below, so ref carries interpreter-
	// faithful per-instruction semantics. Terminator uops are mirrored
	// verbatim (same exit-slot indices), making ref a drop-in demotion
	// target when the optimized stream fails its equivalence proof.
	verify := e.Verify
	var ref, scratch []uop

	newExit := func() int16 {
		sb.exits = append(sb.exits, exitSlot{})
		return int16(len(sb.exits) - 1)
	}

	// canFollow reports whether the trace may continue into the block at
	// target: it must be translated in this generation, not already part of
	// the trace, and fit under the caps.
	canFollow := func(target uint64, blocks int) (*block, bool) {
		if blocks >= MaxTraceBlocks || visited[target] {
			return nil, false
		}
		nb, ok := e.cache[target]
		if !ok || nb.gen != e.gen {
			return nil, false
		}
		if sb.ninsns+uint32(len(nb.ops)) > MaxTraceInsns {
			return nil, false
		}
		return nb, true
	}

	// emitGuardOrExit appends a conditional-branch uop, fusing it with an
	// immediately preceding slt/sltu when the branch tests the compare's
	// destination against x0. Fusion is unsafe when that destination is x0:
	// the architectural branch then reads the constant 0, not the compare.
	emit := func(u uop) {
		if verify {
			ref = append(ref, u)
		}
		if len(sb.ops) > 0 && (u.kind == uGuard || u.kind == uBranchExit) &&
			u.rs2 == 0 && (u.bop == isa.OpBEQ || u.bop == isa.OpBNE) {
			p := &sb.ops[len(sb.ops)-1]
			if (p.kind == uSlt || p.kind == uSltu) && p.rd != 0 && p.rd == u.rs1 {
				fused := u
				if u.kind == uGuard {
					fused.kind = uFusedCmpGuard
				} else {
					fused.kind = uFusedCmpExit
				}
				fused.rd = p.rd
				fused.rs1 = p.rs1
				fused.rs2 = p.rs2
				fused.cmpU = p.kind == uSltu
				fused.selfCost += p.selfCost
				fused.selfInsns += p.selfInsns
				*p = fused
				e.Stats.FusedUops++
				return
			}
		}
		sb.ops = append(sb.ops, u)
	}

	// app appends a terminator/link uop, mirroring it into the reference
	// stream under -verify.
	app := func(u uop) {
		sb.ops = append(sb.ops, u)
		if verify {
			ref = append(ref, u)
		}
	}

	b := head
	blocks := 0
loop:
	for {
		blocks++
		n := len(b.ops)
		term := -1
		if n > 0 && b.ops[n-1].IsBranch() {
			term = n - 1
		}
		for i := 0; i < n; i++ {
			if i == term {
				break
			}
			sb.ops = e.lowerInsn(sb.ops, &b.ops[i], b.pcs[i])
			if verify {
				scratch = e.lowerInsn(scratch[:0], &b.ops[i], b.pcs[i])
				ref = append(ref, scratch...)
			}
			sb.ninsns++
		}
		if term < 0 {
			// Block without a terminator: MaxBlockInsns fall-through, or a
			// mid-block fetch failure. Continue into the fall-through when
			// possible; otherwise exit the trace there (a non-translatable
			// PC then fails at Exec's lookup, exactly as with execBlock).
			fallPC := b.fallPC
			if fallPC == 0 {
				last := len(b.ops) - 1
				fallPC = b.pcs[last] + uint64(b.ops[last].Size())
			}
			if nb, ok := canFollow(fallPC, blocks); ok {
				visited[fallPC] = true
				b = nb
				continue
			}
			app(uop{kind: uExit, npc: fallPC, exit: newExit(), exit2: -1})
			break
		}

		ins := &b.ops[term]
		pc := b.pcs[term]
		sb.ninsns++
		cost := int32(e.opCost[ins.Op])

		switch {
		case ins.Op == isa.OpJAL:
			target := pc + uint64(ins.Imm*4)
			link := uop{kind: uLink, rd: ins.Rd, val: pc + 4, pc: pc,
				selfInsns: 1, selfCost: cost, exit: -1, exit2: -1}
			if ins.Rd == 0 {
				link.kind = uNop
			}
			if target == sb.entry {
				app(link)
				app(uop{kind: uLoopBack, pc: pc, exit: -1, exit2: -1})
				break loop
			}
			if nb, ok := canFollow(target, blocks); ok {
				app(link)
				visited[target] = true
				b = nb
				continue
			}
			link.kind = uJalExit
			link.npc = target
			link.exit = newExit()
			app(link)
			break loop

		case ins.Op == isa.OpJALR:
			app(uop{kind: uJalrExit, rd: ins.Rd, rs1: ins.Rs1,
				imm: ins.Imm, val: pc + 4, pc: pc, selfInsns: 1, selfCost: cost,
				exit: -1, exit2: -1})
			break loop

		case isCondBranch(ins.Op):
			takenPC := pc + uint64(ins.Imm*4)
			fallPC := pc + 4
			if followTaken, biased := biasDir(b.takenCount, b.fallCount); biased {
				onPC, offPC := takenPC, fallPC
				if !followTaken {
					onPC, offPC = fallPC, takenPC
				}
				if onPC == sb.entry {
					emit(uop{kind: uGuard, rs1: ins.Rs1, rs2: ins.Rs2, bop: ins.Op,
						expectTaken: followTaken, pc: pc, npc: offPC,
						selfInsns: 1, selfCost: cost, exit: newExit(), exit2: -1})
					app(uop{kind: uLoopBack, pc: pc, exit: -1, exit2: -1})
					break loop
				}
				if nb, ok := canFollow(onPC, blocks); ok {
					emit(uop{kind: uGuard, rs1: ins.Rs1, rs2: ins.Rs2, bop: ins.Op,
						expectTaken: followTaken, pc: pc, npc: offPC,
						selfInsns: 1, selfCost: cost, exit: newExit(), exit2: -1})
					visited[onPC] = true
					b = nb
					continue
				}
			}
			emit(uop{kind: uBranchExit, rs1: ins.Rs1, rs2: ins.Rs2, bop: ins.Op,
				pc: pc, npc: takenPC, npc2: fallPC,
				selfInsns: 1, selfCost: cost, exit: newExit(), exit2: newExit()})
			break loop

		case ins.Op == isa.OpSVC:
			app(uop{kind: uSvcExit, pc: pc,
				selfInsns: 1, selfCost: cost, exit: -1, exit2: -1})
			break loop
		case ins.Op == isa.OpHALT:
			app(uop{kind: uHaltExit, pc: pc,
				selfInsns: 1, selfCost: cost, exit: -1, exit2: -1})
			break loop
		default: // EBREAK and anything unexpected
			app(uop{kind: uEbreakExit, pc: pc,
				selfInsns: 1, selfCost: cost, exit: -1, exit2: -1})
			break loop
		}
	}

	sb.ops = e.peepPass(sb.ops)
	segmentize(sb.ops)

	if verify {
		if err := symEquivSeq(ref, sb.ops); err != nil {
			// Demote with a diagnostic: install the per-instruction
			// reference lowering, which is correct by construction and
			// reuses the same exit slots.
			e.Stats.VerifyDemotions++
			if e.OnVerifyFail != nil {
				e.OnVerifyFail("superblock", sb.entry, err)
			}
			segmentize(ref)
			sb.ops = ref
		} else {
			e.Stats.VerifiedSuperblocks++
		}
	}

	t := int64(sb.ninsns) * e.Cost.TranslateNs
	*spent += t
	e.Stats.TranslateNs += t
	e.Stats.Superblocks++
	e.Stats.TranslatedInsns += uint64(sb.ninsns)
	return sb
}
