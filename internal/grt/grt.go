// Package grt is the guest runtime: the statically linked "libc" of DQEMU
// guest programs. The paper's workloads are ARM binaries with all libraries
// statically linked (§6.1); grt plays the role of those libraries — startup
// code, a syscall veneer, console output, a heap, and pthread-style threads,
// mutexes and barriers built on the clone/futex syscalls that the cluster's
// delegation layer implements.
//
// BuildProgram compiles a mini-C workload, links it with the runtime and
// returns a loadable guest image.
package grt

import (
	"fmt"

	"dqemu/internal/abi"
	"dqemu/internal/asm"
	"dqemu/internal/image"
	"dqemu/internal/minicc"
)

// StackSize is the stack reserved for each guest thread.
const StackSize = image.StackSize

// startS is the program entry point and thread trampoline.
var startS = fmt.Sprintf(`
	.text
	.global _start
_start:
	; The loader points SP at the main thread's stack top.
	call __rt_init
	call main
	li   a7, %d          ; exit_group(main_result)
	svc  0

	; __thread_start is the trampoline every spawned thread begins at. The
	; kernel builds the child context as: PC=__thread_start, A0=fn, A1=arg,
	; SP=fresh stack top (§4.1).
	.global __thread_start
__thread_start:
	mv   t0, a0
	mv   a0, a1
	jalr ra, t0, 0
	li   a7, %d          ; exit(thread_result)
	svc  0

	; long __syscall(long n, long a, long b, long c, long d, long e, long f)
	.global __syscall
__syscall:
	mv   a7, a0
	mv   a0, a1
	mv   a1, a2
	mv   a2, a3
	mv   a3, a4
	mv   a4, a5
	mv   a5, a6
	svc  0
	ret
`, abi.SysExitGroup, abi.SysExit)

// Prelude declares the runtime API for workload sources. Prepend it (it is
// pure declarations, so line numbers shift but nothing else).
const Prelude = `
extern long __syscall(long n, long a, long b, long c, long d, long e, long f);
extern long strlen(char *s);
extern void print_str(char *s);
extern void print_char(long c);
extern void print_long(long v);
extern void print_double(double x);
extern long malloc(long n);
extern void free(long p);
extern void memset(char *p, long c, long n);
extern void memcpy(char *dst, char *src, long n);
extern long thread_create(long fn, long arg);
extern void thread_join(long tid);
extern long gettid();
extern long getpid();
extern long node_id();
extern long num_nodes();
extern void dq_hint(long group);
extern long now_ns();
extern void sleep_ns(long ns);
extern void yield();
extern void mutex_lock(long *m);
extern void mutex_unlock(long *m);
extern void barrier_init(long *b, long total);
extern void barrier_wait(long *b);
extern void exit(long code);
extern long rand_next(long *state);
extern long sys_write(long fd, char *buf, long n);
extern long sys_read(long fd, char *buf, long n);
extern long open_file(char *path, long flags);
extern long close_file(long fd);
`

// runtimeC is the mini-C half of the runtime.
var runtimeC = fmt.Sprintf(`
extern long __syscall(long n, long a, long b, long c, long d, long e, long f);

// ---- syscall veneers ----

long sys_write(long fd, char *buf, long n) {
	return __syscall(%[1]d, fd, (long)buf, n, 0, 0, 0);
}

long sys_read(long fd, char *buf, long n) {
	return __syscall(%[2]d, fd, (long)buf, n, 0, 0, 0);
}

long open_file(char *path, long flags) {
	// openat(AT_FDCWD=-100, path, flags, 0666)
	return __syscall(%[3]d, -100, (long)path, flags, 438, 0, 0);
}

long close_file(long fd) {
	return __syscall(%[4]d, fd, 0, 0, 0, 0, 0);
}

void exit(long code) {
	__syscall(%[5]d, code, 0, 0, 0, 0, 0);
}

long gettid() { return __syscall(%[6]d, 0, 0, 0, 0, 0, 0); }
long getpid() { return __syscall(%[7]d, 0, 0, 0, 0, 0, 0); }
long node_id() { return __syscall(%[8]d, 0, 0, 0, 0, 0, 0); }
long num_nodes() { return __syscall(%[9]d, 0, 0, 0, 0, 0, 0); }
void dq_hint(long group) { __syscall(%[10]d, group, 0, 0, 0, 0, 0); }
void yield() { __syscall(%[11]d, 0, 0, 0, 0, 0, 0); }

long now_ns() {
	long ts[2];
	__syscall(%[12]d, 0, (long)ts, 0, 0, 0, 0);
	return ts[0] * 1000000000 + ts[1];
}

void sleep_ns(long ns) {
	long ts[2];
	ts[0] = ns / 1000000000;
	ts[1] = ns %% 1000000000;
	__syscall(%[13]d, (long)ts, 0, 0, 0, 0, 0);
}

// ---- strings and console ----

long strlen(char *s) {
	long n = 0;
	while (s[n]) n++;
	return n;
}

void memset(char *p, long c, long n) {
	for (long i = 0; i < n; i++) p[i] = (char)c;
}

void memcpy(char *dst, char *src, long n) {
	for (long i = 0; i < n; i++) dst[i] = src[i];
}

void print_str(char *s) { sys_write(1, s, strlen(s)); }

void print_char(long c) {
	char b[2];
	b[0] = (char)c;
	sys_write(1, b, 1);
}

long __fmt_long(char *buf, long v) {
	long i = 0;
	long neg = 0;
	if (v < 0) { neg = 1; v = -v; }
	char tmp[24];
	long n = 0;
	if (v == 0) { tmp[0] = '0'; n = 1; }
	while (v > 0) { tmp[n] = (char)('0' + v %% 10); v /= 10; n++; }
	if (neg) { buf[i] = '-'; i++; }
	while (n > 0) { n--; buf[i] = tmp[n]; i++; }
	return i;
}

void print_long(long v) {
	char buf[32];
	long n = __fmt_long(buf, v);
	sys_write(1, buf, n);
}

void print_double(double x) {
	char buf[64];
	long i = 0;
	if (x < 0.0) { buf[i] = '-'; i++; x = -x; }
	long ip = (long)x;
	i += __fmt_long(buf + i, ip);
	buf[i] = '.';
	i++;
	double fr = x - (double)ip;
	for (long d = 0; d < 6; d++) {
		fr = fr * 10.0;
		long dig = (long)fr;
		buf[i] = (char)('0' + dig);
		i++;
		fr -= (double)dig;
	}
	sys_write(1, buf, i);
}

// ---- heap ----

long __heap_cur;
long __heap_end;
long __heap_lock;

void __rt_init() {
	__heap_cur = __syscall(%[14]d, 0, 0, 0, 0, 0, 0);
	__heap_end = __heap_cur;
}

long malloc(long n) {
	mutex_lock(&__heap_lock);
	n = (n + 15) & ~15;
	if (__heap_end - __heap_cur < n) {
		long grow = n + 1048576;
		long nend = __syscall(%[14]d, __heap_end + grow, 0, 0, 0, 0, 0);
		if (nend < __heap_end + n) {
			mutex_unlock(&__heap_lock);
			return 0;
		}
		__heap_end = nend;
	}
	long p = __heap_cur;
	__heap_cur += n;
	mutex_unlock(&__heap_lock);
	return p;
}

void free(long p) {
	// Arena allocator: free is a no-op, like many static benchmark builds.
}

// ---- threads ----

long thread_create(long fn, long arg) {
	long stack = __syscall(%[15]d, 0, %[16]d, 3, 0x22, -1, 0);   // mmap
	if (stack < 0) return -1;
	return __syscall(%[17]d, fn, arg, stack + %[16]d, 0, 0, 0);  // dq_thread_create
}

void thread_join(long tid) {
	__syscall(%[18]d, tid, 0, 0, 0, 0, 0);
}

// ---- futex mutex (0 free, 1 locked, 2 contended) ----

void mutex_lock(long *m) {
	// Adaptive test-and-test-and-set mutex (paper §4.4: threads "spin and
	// wait ... may use the syscall futex_wait after certain period of
	// time"). The spin yields the core between attempts, so same-node
	// contention resolves cheaply; cross-node contention still ping-pongs
	// the lock page and eventually falls back to the delegated futex —
	// the asymmetry behind Fig. 6's worst case.
	long c = 1;
	for (long spin = 0; spin < 4; spin++) {
		if (*m == 0) {
			c = __cas(m, 0, 1);
			if (c == 0) return;
		}
		yield();
	}
	while (1) {
		if (c == 2) {
			__syscall(%[19]d, (long)m, %[20]d, 2, 0, 0, 0);
		} else {
			if (__cas(m, 1, 2) == 1) {
				__syscall(%[19]d, (long)m, %[20]d, 2, 0, 0, 0);
			}
		}
		c = __cas(m, 0, 2);
		if (c == 0) return;
	}
}

void mutex_unlock(long *m) {
	long old = __amoswap(m, 0);
	if (old == 2) {
		// Naive futex mutex: wake every waiter. The resulting cross-node
		// retry storm is the paper's worst-case behaviour (§6.1.1): all
		// sleeping nodes re-request the lock page, and most fall back to
		// another remote futex_wait.
		__syscall(%[19]d, (long)m, %[21]d, 1000000, 0, 0, 0);
	}
}

// ---- barrier: {arrived, generation, total} ----

void barrier_init(long *b, long total) {
	b[0] = 0;
	b[1] = 0;
	b[2] = total;
}

void barrier_wait(long *b) {
	long gen = b[1];
	long arrived = __amoadd(&b[0], 1) + 1;
	if (arrived == b[2]) {
		b[0] = 0;
		__fence();
		__amoadd(&b[1], 1);
		__syscall(%[19]d, (long)(b + 1), %[21]d, 1000000, 0, 0, 0);
		return;
	}
	while (b[1] == gen) {
		__syscall(%[19]d, (long)(b + 1), %[20]d, gen, 0, 0, 0);
	}
}

// ---- misc ----

long rand_next(long *state) {
	long x = *state;
	x = x ^ (x << 13);
	x = x ^ ((x >> 7) & 0x1ffffffffffffff);
	x = x ^ (x << 17);
	*state = x;
	if (x < 0) x = -x;
	return x;
}
`,
	abi.SysWrite, abi.SysRead, abi.SysOpenAt, abi.SysClose, abi.SysExit,
	abi.SysGetTID, abi.SysGetPID, abi.SysNodeID, abi.SysNumNodes, abi.SysHint,
	abi.SysSchedYield, abi.SysClockGettime, abi.SysNanosleep, abi.SysBrk,
	abi.SysMmap, StackSize, abi.SysThreadCreate, abi.SysThreadJoin,
	abi.SysFutex, abi.FutexWait, abi.FutexWake,
)

// RuntimeSources compiles the runtime and returns its assembly units.
func RuntimeSources() ([]asm.Source, error) {
	rtAsm, err := minicc.Compile("rt.mc", runtimeC)
	if err != nil {
		return nil, fmt.Errorf("grt: compiling runtime: %w", err)
	}
	return []asm.Source{
		{Name: "start.s", Text: startS},
		{Name: "rt.s", Text: rtAsm},
	}, nil
}

// BuildProgram compiles a mini-C workload (the Prelude is prepended) and
// links it with the runtime into a guest image.
func BuildProgram(name, src string) (*image.Image, error) {
	userAsm, err := minicc.Compile(name, Prelude+src)
	if err != nil {
		return nil, err
	}
	rt, err := RuntimeSources()
	if err != nil {
		return nil, err
	}
	sources := append(rt, asm.Source{Name: name + ".s", Text: userAsm})
	im, err := asm.Assemble(sources...)
	if err != nil {
		return nil, fmt.Errorf("grt: assembling %s: %w", name, err)
	}
	return im, nil
}

// BuildAsmProgram assembles raw assembly sources together with the runtime.
func BuildAsmProgram(sources ...asm.Source) (*image.Image, error) {
	rt, err := RuntimeSources()
	if err != nil {
		return nil, err
	}
	im, err := asm.Assemble(append(rt, sources...)...)
	if err != nil {
		return nil, fmt.Errorf("grt: assembling: %w", err)
	}
	return im, nil
}
