package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// testClient drives the real HTTP surface, as tenants would.
type testClient struct {
	t      *testing.T
	base   string
	tenant string
}

func (c *testClient) req(method, path string, body any) (*http.Response, []byte) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	if c.tenant != "" {
		req.Header.Set(TenantHeader, c.tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	return resp, data
}

// submit posts a job and requires the given HTTP status.
func (c *testClient) submit(req *JobRequest, wantStatus int) JobStatus {
	c.t.Helper()
	resp, data := c.req("POST", "/v1/jobs", req)
	if resp.StatusCode != wantStatus {
		c.t.Fatalf("submit: HTTP %d (want %d): %s", resp.StatusCode, wantStatus, data)
	}
	var st JobStatus
	if wantStatus == http.StatusAccepted {
		if err := json.Unmarshal(data, &st); err != nil {
			c.t.Fatal(err)
		}
	}
	return st
}

// wait long-polls a job to a terminal state.
func (c *testClient) wait(id string) JobStatus {
	c.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, data := c.req("GET", "/v1/jobs/"+id+"?wait_ms=1000", nil)
		if resp.StatusCode != http.StatusOK {
			c.t.Fatalf("wait: HTTP %d: %s", resp.StatusCode, data)
		}
		var st JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			c.t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
	}
	c.t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

func (c *testClient) result(id string) JobResult {
	c.t.Helper()
	resp, data := c.req("GET", "/v1/jobs/"+id+"/result", nil)
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("result: HTTP %d: %s", resp.StatusCode, data)
	}
	var res JobResult
	if err := json.Unmarshal(data, &res); err != nil {
		c.t.Fatal(err)
	}
	return res
}

func (c *testClient) daemonStatus() Status {
	c.t.Helper()
	resp, data := c.req("GET", "/v1/status", nil)
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("status: HTTP %d: %s", resp.StatusCode, data)
	}
	var st Status
	if err := json.Unmarshal(data, &st); err != nil {
		c.t.Fatal(err)
	}
	return st
}

func startServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Drain(5 * time.Second)
		ts.Close()
	})
	return srv, ts
}

func countingSource(idx int) string {
	return fmt.Sprintf(`
long main() {
	long s = 0;
	for (long i = 0; i < 20000; i++) s += i ^ %d;
	print_str("job ");
	print_long(%d);
	print_char('\n');
	return 0;
}`, idx, idx)
}

// TestJobLifecycleHTTP pushes one job through the full REST surface.
func TestJobLifecycleHTTP(t *testing.T) {
	_, ts := startServer(t, Options{})
	c := &testClient{t: t, base: ts.URL, tenant: "alice"}

	st := c.submit(&JobRequest{Name: "hello", Source: countingSource(7), Slaves: 1}, http.StatusAccepted)
	if st.State != StateQueued && st.State != StateRunning {
		t.Errorf("fresh job state = %s", st.State)
	}
	if st.Tenant != "alice" || st.Backend != "sim" {
		t.Errorf("tenant=%q backend=%q", st.Tenant, st.Backend)
	}
	fin := c.wait(st.ID)
	if fin.State != StateSucceeded {
		t.Fatalf("state = %s (err %q)", fin.State, fin.Error)
	}
	if fin.ExitCode == nil || *fin.ExitCode != 0 {
		t.Errorf("exit code = %v", fin.ExitCode)
	}
	if fin.GuestInsns == 0 || fin.TimeNs == 0 {
		t.Errorf("missing accounting: insns=%d time=%d", fin.GuestInsns, fin.TimeNs)
	}
	res := c.result(st.ID)
	if res.Console != "job 7\n" {
		t.Errorf("console = %q", res.Console)
	}

	// Console as plain text too.
	resp, body := c.req("GET", "/v1/jobs/"+st.ID+"/output", nil)
	if resp.StatusCode != http.StatusOK || string(body) != "job 7\n" {
		t.Errorf("output: HTTP %d %q", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-DQEMU-Exit-Code"); got != "0" {
		t.Errorf("exit code header = %q", got)
	}

	// Unknown job is a JSON 404.
	resp, body = c.req("GET", "/v1/jobs/nope", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: HTTP %d %s", resp.StatusCode, body)
	}
}

// TestConcurrentTenantsE2E is the acceptance scenario: two tenants drive
// three concurrent jobs each through the REST API; every job reaches a
// terminal state with the right output, and a third tenant's instruction
// budget runs out mid-sequence with an observable 429.
func TestConcurrentTenantsE2E(t *testing.T) {
	_, ts := startServer(t, Options{
		Workers: 6,
		Quotas: map[string]Quota{
			"broke": {MaxInsns: 1}, // one job's worth and no more
		},
	})

	type outcome struct {
		tenant string
		idx    int
		res    JobResult
	}
	results := make(chan outcome, 6)
	var wg sync.WaitGroup
	for _, tenant := range []string{"alice", "bob"} {
		for idx := 0; idx < 3; idx++ {
			wg.Add(1)
			go func(tenant string, idx int) {
				defer wg.Done()
				c := &testClient{t: t, base: ts.URL, tenant: tenant}
				st := c.submit(&JobRequest{
					Name:   fmt.Sprintf("%s-%d", tenant, idx),
					Source: countingSource(idx),
				}, http.StatusAccepted)
				c.wait(st.ID)
				results <- outcome{tenant, idx, c.result(st.ID)}
			}(tenant, idx)
		}
	}
	wg.Wait()
	close(results)
	seen := 0
	for out := range results {
		seen++
		if out.res.State != StateSucceeded {
			t.Errorf("%s job %d: state %s (%s)", out.tenant, out.idx, out.res.State, out.res.Error)
			continue
		}
		if want := fmt.Sprintf("job %d\n", out.idx); out.res.Console != want {
			t.Errorf("%s job %d: console %q want %q", out.tenant, out.idx, out.res.Console, want)
		}
		if out.res.Tenant != out.tenant {
			t.Errorf("job %d leaked across tenants: %q", out.idx, out.res.Tenant)
		}
	}
	if seen != 6 {
		t.Fatalf("only %d/6 jobs completed", seen)
	}

	// The broke tenant gets one job through (the budget is charged at
	// completion), then admission refuses.
	broke := &testClient{t: t, base: ts.URL, tenant: "broke"}
	st := broke.submit(&JobRequest{Source: countingSource(0)}, http.StatusAccepted)
	if fin := broke.wait(st.ID); fin.State != StateSucceeded {
		t.Fatalf("broke tenant's first job: %s (%s)", fin.State, fin.Error)
	}
	broke.submit(&JobRequest{Source: countingSource(1)}, http.StatusTooManyRequests)

	ds := broke.daemonStatus()
	var found bool
	for _, row := range ds.Tenants {
		if row.Tenant == "broke" {
			found = true
			if row.Rejections == 0 || row.UsedInsns == 0 {
				t.Errorf("broke tenant accounting: %+v", row)
			}
		}
	}
	if !found {
		t.Error("broke tenant missing from /v1/status")
	}
}

// blockingBackend parks every job until released (or canceled), making
// queue and concurrency states deterministic for quota tests.
type blockingBackend struct {
	mu      sync.Mutex
	started int
	release chan struct{}
}

func newBlockingBackend() *blockingBackend {
	return &blockingBackend{release: make(chan struct{})}
}

func (b *blockingBackend) Name() string { return "sim" }

func (b *blockingBackend) Run(cancel <-chan struct{}, spec RunSpec) (*RunOutcome, error) {
	b.mu.Lock()
	b.started++
	b.mu.Unlock()
	select {
	case <-b.release:
		return &RunOutcome{ExitCode: 0, Console: "released\n", GuestInsns: 10}, nil
	case <-cancel:
		return nil, fmt.Errorf("blocking backend: %w", ErrJobCanceled)
	}
}

func (b *blockingBackend) startedCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.started
}

const trivialSource = `long main() { return 0; }`

// TestQuotaConcurrencyAndQueue pins the admission math: MaxConcurrent=1
// and MaxQueued=1 admit exactly two jobs (one running, one queued); the
// third is rejected 429 while an unrelated tenant still gets in.
func TestQuotaConcurrencyAndQueue(t *testing.T) {
	backend := newBlockingBackend()
	_, ts := startServer(t, Options{
		Workers:      4,
		DefaultQuota: Quota{MaxConcurrent: 1, MaxQueued: 1},
		Backends:     map[string]Backend{"sim": backend},
	})
	c := &testClient{t: t, base: ts.URL, tenant: "alice"}

	first := c.submit(&JobRequest{Source: trivialSource}, http.StatusAccepted)
	// Wait until the worker has actually claimed the first job, so the
	// tenant's running/queued split is deterministic.
	deadline := time.Now().Add(10 * time.Second)
	for backend.startedCount() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if backend.startedCount() != 1 {
		t.Fatal("first job never started")
	}
	second := c.submit(&JobRequest{Source: trivialSource}, http.StatusAccepted)
	c.submit(&JobRequest{Source: trivialSource}, http.StatusTooManyRequests)

	// Another tenant is unaffected by alice's full queue.
	other := &testClient{t: t, base: ts.URL, tenant: "bob"}
	third := other.submit(&JobRequest{Source: trivialSource}, http.StatusAccepted)

	// MaxConcurrent=1: the second job must not start while the first runs.
	time.Sleep(100 * time.Millisecond)
	if got := backend.startedCount(); got != 2 { // alice's first + bob's
		t.Errorf("started %d jobs, want 2 (alice serialized, bob running)", got)
	}
	st := c.daemonStatus()
	if st.Running != 2 || st.Queued != 1 {
		t.Errorf("daemon status: running=%d queued=%d, want 2/1", st.Running, st.Queued)
	}

	close(backend.release)
	for _, id := range []string{first.ID, second.ID, third.ID} {
		if fin := c.wait(id); fin.State != StateSucceeded {
			t.Errorf("job %s: %s (%s)", id, fin.State, fin.Error)
		}
	}
}

// TestCancelAndTimeout covers DELETE on running and queued jobs plus the
// per-job timeout.
func TestCancelAndTimeout(t *testing.T) {
	backend := newBlockingBackend()
	_, ts := startServer(t, Options{
		Workers:      2,
		DefaultQuota: Quota{MaxConcurrent: 1},
		Backends:     map[string]Backend{"sim": backend},
	})
	c := &testClient{t: t, base: ts.URL, tenant: "alice"}

	running := c.submit(&JobRequest{Source: trivialSource}, http.StatusAccepted)
	deadline := time.Now().Add(10 * time.Second)
	for backend.startedCount() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	queued := c.submit(&JobRequest{Source: trivialSource}, http.StatusAccepted)

	// Cancel the queued job first: it must go terminal without running.
	resp, data := c.req("DELETE", "/v1/jobs/"+queued.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: HTTP %d: %s", resp.StatusCode, data)
	}
	if fin := c.wait(queued.ID); fin.State != StateCanceled {
		t.Errorf("queued job after cancel: %s", fin.State)
	}

	resp, data = c.req("DELETE", "/v1/jobs/"+running.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel running: HTTP %d: %s", resp.StatusCode, data)
	}
	if fin := c.wait(running.ID); fin.State != StateCanceled {
		t.Errorf("running job after cancel: %s", fin.State)
	}
	// Double cancel conflicts.
	resp, _ = c.req("DELETE", "/v1/jobs/"+running.ID, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("second cancel: HTTP %d, want 409", resp.StatusCode)
	}

	// Timeout: a job that outlives timeout_ms is canceled by the daemon.
	timed := c.submit(&JobRequest{Source: trivialSource, TimeoutMs: 50}, http.StatusAccepted)
	fin := c.wait(timed.ID)
	if fin.State != StateCanceled {
		t.Errorf("timed-out job: %s (%s)", fin.State, fin.Error)
	}
	if fin.Error == "" {
		t.Error("timed-out job carries no reason")
	}
}

// TestSimCancelPropagates cancels a genuinely running simulation: the
// cancel channel must reach core.Cluster.Run and stop it mid-guest.
func TestSimCancelPropagates(t *testing.T) {
	_, ts := startServer(t, Options{Workers: 1})
	c := &testClient{t: t, base: ts.URL, tenant: "alice"}
	st := c.submit(&JobRequest{Source: `
long main() {
	long s = 0;
	for (long i = 0; i < 4000000000; i++) s += i;
	print_long(s);
	return 0;
}`}, http.StatusAccepted)
	// Give the job a moment to enter the cluster loop, then cancel.
	time.Sleep(200 * time.Millisecond)
	resp, data := c.req("DELETE", "/v1/jobs/"+st.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: HTTP %d: %s", resp.StatusCode, data)
	}
	start := time.Now()
	fin := c.wait(st.ID)
	if fin.State != StateCanceled {
		t.Fatalf("state = %s (%s)", fin.State, fin.Error)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Errorf("cancellation took %v to land", took)
	}
}

// panicBackend blows up on every job.
type panicBackend struct{}

func (panicBackend) Name() string { return "sim" }
func (panicBackend) Run(<-chan struct{}, RunSpec) (*RunOutcome, error) {
	panic("backend exploded")
}

// TestCrashIsolation: a panicking job must fail alone; the daemon keeps
// serving and running other jobs.
func TestCrashIsolation(t *testing.T) {
	_, ts := startServer(t, Options{
		Workers: 2,
		Backends: map[string]Backend{
			"sim":  panicBackend{},
			"good": &SimBackend{},
		},
	})
	c := &testClient{t: t, base: ts.URL, tenant: "alice"}

	st := c.submit(&JobRequest{Source: trivialSource}, http.StatusAccepted)
	fin := c.wait(st.ID)
	if fin.State != StateFailed {
		t.Fatalf("panicked job state = %s", fin.State)
	}
	if fin.Error == "" || fin.ExitCode != nil {
		t.Errorf("panicked job: err=%q exit=%v", fin.Error, fin.ExitCode)
	}

	// The daemon survived: a healthy backend still runs jobs.
	st = c.submit(&JobRequest{Source: countingSource(1), Backend: "good"}, http.StatusAccepted)
	if fin := c.wait(st.ID); fin.State != StateSucceeded {
		t.Errorf("post-panic job: %s (%s)", fin.State, fin.Error)
	}
}

// TestLiveBackendJob runs one job on a real-socket per-job cluster.
func TestLiveBackendJob(t *testing.T) {
	_, ts := startServer(t, Options{Workers: 2})
	c := &testClient{t: t, base: ts.URL, tenant: "alice"}
	st := c.submit(&JobRequest{
		Source:  countingSource(42),
		Backend: "live",
		Slaves:  1,
	}, http.StatusAccepted)
	fin := c.wait(st.ID)
	if fin.State != StateSucceeded {
		t.Fatalf("live job: %s (%s)", fin.State, fin.Error)
	}
	res := c.result(st.ID)
	if res.Console != "job 42\n" {
		t.Errorf("live console = %q", res.Console)
	}
}

// TestDrain: admitted jobs finish, new submissions bounce with 503, and
// the worker pool exits cleanly.
func TestDrain(t *testing.T) {
	backend := newBlockingBackend()
	srv, ts := startServer(t, Options{
		Workers:  2,
		Backends: map[string]Backend{"sim": backend},
	})
	c := &testClient{t: t, base: ts.URL, tenant: "alice"}

	a := c.submit(&JobRequest{Source: trivialSource}, http.StatusAccepted)
	b := c.submit(&JobRequest{Source: trivialSource}, http.StatusAccepted)

	drained := make(chan struct{})
	go func() { srv.Drain(30 * time.Second); close(drained) }()

	// Draining: admissions must bounce while in-flight jobs still report.
	deadline := time.Now().Add(10 * time.Second)
	for !c.daemonStatus().Draining && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.submit(&JobRequest{Source: trivialSource}, http.StatusServiceUnavailable)

	select {
	case <-drained:
		t.Fatal("drain finished with jobs still running")
	case <-time.After(100 * time.Millisecond):
	}
	close(backend.release)
	select {
	case <-drained:
	case <-time.After(30 * time.Second):
		t.Fatal("drain never finished after jobs were released")
	}
	for _, id := range []string{a.ID, b.ID} {
		if fin := c.wait(id); fin.State != StateSucceeded {
			t.Errorf("job %s after drain: %s", id, fin.State)
		}
	}
}

// TestDrainGraceCancels: when the grace period expires, still-running jobs
// are canceled rather than blocking shutdown forever.
func TestDrainGraceCancels(t *testing.T) {
	backend := newBlockingBackend() // never released
	srv, ts := startServer(t, Options{
		Workers:  1,
		Backends: map[string]Backend{"sim": backend},
	})
	c := &testClient{t: t, base: ts.URL, tenant: "alice"}
	st := c.submit(&JobRequest{Source: trivialSource}, http.StatusAccepted)
	deadline := time.Now().Add(10 * time.Second)
	for backend.startedCount() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	go func() { srv.Drain(200 * time.Millisecond); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("forced drain hung")
	}
	if fin := c.wait(st.ID); fin.State != StateCanceled {
		t.Errorf("job after forced drain: %s", fin.State)
	}
}

// TestBadRequests: admission rejects malformed programs and shapes with
// 400s, never creating daemon state.
func TestBadRequests(t *testing.T) {
	_, ts := startServer(t, Options{MaxSlaves: 4})
	c := &testClient{t: t, base: ts.URL, tenant: "alice"}

	for _, req := range []*JobRequest{
		{},                                     // no program
		{Source: "long main( {", Name: "bad"},  // does not compile
		{Source: trivialSource, Slaves: 99},    // over MaxSlaves
		{Source: trivialSource, Backend: "xx"}, // unknown backend
	} {
		resp, _ := c.req("POST", "/v1/jobs", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("req %+v: HTTP %d, want 400", req, resp.StatusCode)
		}
	}
	if jobs := c.daemonStatus(); jobs.Queued != 0 || jobs.Running != 0 {
		t.Errorf("rejected submissions left daemon state: %+v", jobs)
	}
}
