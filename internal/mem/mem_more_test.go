package mem

import (
	"testing"

	"dqemu/internal/image"
)

func TestSplitFactorsTwoAndEight(t *testing.T) {
	for _, factor := range []int{2, 8} {
		s := NewSpace(0)
		s.SetPerm(1, PermReadWrite)
		for i := 0; i < 4096; i++ {
			s.Store(0x1000+uint64(i), uint64(i&0xff), 1)
		}
		orig := append([]byte(nil), s.PageData(1)...)
		shadows := make([]uint64, factor)
		base := uint64(image.ShadowBase) >> 12
		for i := range shadows {
			shadows[i] = base + uint64(i)
		}
		if err := s.AddRemap(1, shadows); err != nil {
			t.Fatalf("factor %d: %v", factor, err)
		}
		part := 4096 / factor
		for i, sh := range shadows {
			data := make([]byte, 4096)
			copy(data[i*part:(i+1)*part], orig[i*part:(i+1)*part])
			s.InstallPage(sh, data, PermReadWrite)
		}
		for i := 0; i < 4096; i += 97 {
			v, f := s.Load(0x1000+uint64(i), 1)
			if f != nil || v != uint64(i&0xff) {
				t.Fatalf("factor %d addr %#x: %v %v", factor, 0x1000+i, v, f)
			}
		}
	}
}

func TestLoadStoreOnSplitBoundaries(t *testing.T) {
	s := NewSpace(0)
	s.SetPerm(1, PermReadWrite)
	base := uint64(image.ShadowBase) >> 12
	shadows := []uint64{base, base + 1}
	s.AddRemap(1, shadows)
	for _, sh := range shadows {
		s.InstallPage(sh, nil, PermReadWrite)
	}
	// 8-byte store exactly straddling the two halves (offset 2044..2051).
	if f := s.Store(0x1000+2044, 0xAABBCCDDEEFF0011, 8); f != nil {
		t.Fatal(f)
	}
	v, f := s.Load(0x1000+2044, 8)
	if f != nil || v != 0xAABBCCDDEEFF0011 {
		t.Errorf("straddle: %#x %v", v, f)
	}
	// The bytes must land in the right halves.
	if s.PageData(shadows[0])[2047] == 0 || s.PageData(shadows[1])[2048] == 0 {
		t.Error("bytes not distributed across shadow halves")
	}
}

func TestEnsurePageIdempotent(t *testing.T) {
	s := NewSpace(0)
	d1 := s.EnsurePage(5, PermRead)
	d1[0] = 42
	d2 := s.EnsurePage(5, PermReadWrite) // existing page: perm unchanged
	if d2[0] != 42 {
		t.Error("EnsurePage replaced existing data")
	}
	if s.PermOf(5) != PermRead {
		t.Error("EnsurePage changed permission of existing page")
	}
}

func TestPermString(t *testing.T) {
	if PermNone.String() != "I" || PermRead.String() != "S" || PermReadWrite.String() != "M" {
		t.Error("perm names")
	}
}

func TestInstallImagePartialPages(t *testing.T) {
	im := image.New()
	// Two segments sharing page 1 (0x1000): the second install must not
	// clobber the first's bytes.
	im.AddSegment(image.Segment{Name: "text", Addr: 0x1000, Data: []byte{1, 2, 3, 4}})
	im.AddSegment(image.Segment{Name: "rodata", Addr: 0x1100, Data: []byte{9, 9}})
	s := NewSpace(0)
	InstallImage(s, im, PermRead, PermReadWrite)
	if v, _ := s.Load(0x1000, 1); v != 1 {
		t.Errorf("text byte = %d", v)
	}
	if v, _ := s.Load(0x1100, 1); v != 9 {
		t.Errorf("rodata byte = %d", v)
	}
}

func TestInstallImageSkipsPermNone(t *testing.T) {
	im := image.New()
	im.AddSegment(image.Segment{Name: "data", Addr: 0x2000, Data: []byte{7}, Writable: true})
	s := NewSpace(0)
	InstallImage(s, im, PermRead, PermNone) // slave-style: no writable data
	if s.ResidentPages() != 0 {
		t.Errorf("resident = %d", s.ResidentPages())
	}
}

func TestFaultErrorString(t *testing.T) {
	f := &Fault{Addr: 0x1234, Page: 1, Write: true}
	if f.Error() == "" || (&Fault{Addr: 1}).Error() == "" {
		t.Error("fault strings empty")
	}
}

func TestWriteBytesAppliesRemap(t *testing.T) {
	s := NewSpace(0)
	base := uint64(image.ShadowBase) >> 12
	s.AddRemap(1, []uint64{base, base + 1, base + 2, base + 3})
	if err := s.WriteBytes(0x1000+1500, []byte{0xAB}); err != nil {
		t.Fatal(err)
	}
	// 1500 is in quarter 1.
	if s.PageData(base + 1)[1500] != 0xAB {
		t.Error("WriteBytes ignored remap")
	}
	buf := make([]byte, 1)
	if err := s.ReadBytes(0x1000+1500, buf); err != nil || buf[0] != 0xAB {
		t.Errorf("ReadBytes through remap: %v %v", buf, err)
	}
}
