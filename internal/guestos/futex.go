package guestos

import "dqemu/internal/metrics"

// FutexTable is the distributed futex of §4.4: "a wait queue is maintained
// in OS to record the status of threads waiting for the futex semaphore. To
// emulate this functionality in a distributed environment, we have
// implemented a futex table to support a distributed futex syscall." It
// lives on the master; waiters are parked delegated-syscall replies.
type FutexTable struct {
	waiters map[uint64][]futexWaiter
	// Waits and Wakes count operations for the statistics report.
	Waits uint64
	Wakes uint64

	// prof, when armed via SetProfile, records per-word contention (wait
	// time, queue depth, contended hold time) into the cluster's metrics
	// registry; now supplies virtual time. Both nil when metrics are off —
	// every recording call no-ops on the nil profile.
	prof *metrics.LockProfile
	now  func() int64
}

type futexWaiter struct {
	tid  int64
	wake func()
	// since is the virtual park time, kept for the contention profile.
	since int64
}

// NewFutexTable returns an empty table.
func NewFutexTable() *FutexTable {
	return &FutexTable{waiters: map[uint64][]futexWaiter{}}
}

// SetProfile arms contention profiling: p receives wait/wake/release events
// stamped with now(). Pass a nil profile to disarm.
func (t *FutexTable) SetProfile(p *metrics.LockProfile, now func() int64) {
	t.prof = p
	t.now = now
}

func (t *FutexTable) clock() int64 {
	if t.now == nil {
		return 0
	}
	return t.now()
}

// Wait parks tid on addr; wake fires when a FUTEX_WAKE releases it. The
// *addr == val check belongs to the caller (it needs guest memory access).
func (t *FutexTable) Wait(addr uint64, tid int64, wake func()) {
	t.Waits++
	w := futexWaiter{tid: tid, wake: wake}
	if t.prof != nil {
		w.since = t.clock()
		t.prof.Wait(addr, len(t.waiters[addr])+1)
	}
	t.waiters[addr] = append(t.waiters[addr], w)
}

// Wake releases up to n waiters on addr and returns how many woke.
func (t *FutexTable) Wake(addr uint64, n int64) int64 {
	t.Wakes++
	q := t.waiters[addr]
	if len(q) == 0 {
		return 0
	}
	count := int64(len(q))
	if count > n {
		count = n
	}
	released := q[:count]
	rest := q[count:]
	if len(rest) == 0 {
		delete(t.waiters, addr)
	} else {
		t.waiters[addr] = append([]futexWaiter(nil), rest...)
	}
	for _, w := range released {
		if t.prof != nil {
			now := t.clock()
			t.prof.Woke(addr, w.tid, now-w.since, now)
		}
		w.wake()
	}
	return count
}

// NoteRelease records tid issuing FUTEX_WAKE on addr before the wake runs:
// if tid was the last contended acquirer of the word, the span since its
// own wake is charged as hold time. Uncontended acquire/release pairs never
// trap to the futex, so the profile covers contended critical sections only.
func (t *FutexTable) NoteRelease(addr uint64, tid int64) {
	t.prof.Release(addr, tid, t.clock())
}

// Waiting returns the number of threads parked on addr.
func (t *FutexTable) Waiting(addr uint64) int {
	return len(t.waiters[addr])
}

// TotalWaiting returns the number of parked threads across all addresses.
func (t *FutexTable) TotalWaiting() int {
	total := 0
	for _, q := range t.waiters {
		total += len(q)
	}
	return total
}
