package isa

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpStringsUnique(t *testing.T) {
	seen := map[string]Op{}
	for op := OpInvalid + 1; op < opMax; op++ {
		if !op.Valid() {
			t.Fatalf("op %d has no info entry", op)
		}
		name := op.String()
		if prev, dup := seen[name]; dup {
			t.Errorf("duplicate mnemonic %q for ops %d and %d", name, prev, op)
		}
		seen[name] = op
	}
}

func TestEncodeDecodeRoundtripBasic(t *testing.T) {
	cases := []Instruction{
		{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpADDI, Rd: 10, Rs1: 2, Imm: -8},
		{Op: OpADDI, Rd: 10, Rs1: 2, Imm: ImmMax14},
		{Op: OpADDI, Rd: 10, Rs1: 2, Imm: ImmMin14},
		{Op: OpSD, Rs1: 2, Rs2: 10, Imm: 16},
		{Op: OpBEQ, Rs1: 5, Rs2: 6, Imm: -100},
		{Op: OpJAL, Rd: 1, Imm: ImmMax19},
		{Op: OpJAL, Rd: 1, Imm: ImmMin19},
		{Op: OpMOVIW, Rd: 7, Imm: -123456789},
		{Op: OpMOVID, Rd: 7, Imm: -1},
		{Op: OpMOVID, Rd: 7, Imm: math.MaxInt64},
		{Op: OpFMOVD, Rd: 3, Imm: int64(math.Float64bits(3.14159))},
		{Op: OpFADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpSVC, Imm: 0},
		{Op: OpHINT, Imm: 42},
		{Op: OpCAS, Rd: 10, Rs1: 11, Rs2: 12},
		{Op: OpLL, Rd: 9, Rs1: 8},
		{Op: OpFENCE},
		{Op: OpHALT},
	}
	for _, want := range cases {
		buf, err := want.Encode(nil)
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		if int64(len(buf)) != want.Size() {
			t.Errorf("%s: encoded %d bytes, Size()=%d", want.Op, len(buf), want.Size())
		}
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("decode %s: %v", want.Op, err)
		}
		if n != len(buf) {
			t.Errorf("%s: decode consumed %d of %d bytes", want.Op, n, len(buf))
		}
		if got != want {
			t.Errorf("roundtrip: got %+v want %+v", got, want)
		}
	}
}

// randomInstruction builds a random but encodable instruction.
func randomInstruction(r *rand.Rand) Instruction {
	for {
		op := Op(r.Intn(int(opMax)-1) + 1)
		if !op.Valid() {
			continue
		}
		ins := Instruction{Op: op}
		switch op.Format() {
		case FormatR:
			ins.Rd = uint8(r.Intn(32))
			ins.Rs1 = uint8(r.Intn(32))
			ins.Rs2 = uint8(r.Intn(32))
		case FormatI:
			ins.Rd = uint8(r.Intn(32))
			ins.Rs1 = uint8(r.Intn(32))
			ins.Imm = int64(r.Intn(ImmMax14-ImmMin14+1)) + ImmMin14
		case FormatS, FormatB:
			ins.Rs1 = uint8(r.Intn(32))
			ins.Rs2 = uint8(r.Intn(32))
			ins.Imm = int64(r.Intn(ImmMax14-ImmMin14+1)) + ImmMin14
		case FormatJ:
			ins.Rd = uint8(r.Intn(32))
			ins.Imm = int64(r.Intn(ImmMax19-ImmMin19+1)) + ImmMin19
		case FormatX:
			ins.Rd = uint8(r.Intn(32))
			if op == OpMOVIW {
				ins.Imm = int64(int32(r.Uint32()))
			} else {
				ins.Imm = int64(r.Uint64())
			}
		}
		return ins
	}
}

func TestEncodeDecodeRoundtripQuick(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		want := randomInstruction(r)
		buf, err := want.Encode(nil)
		if err != nil {
			t.Logf("encode %+v: %v", want, err)
			return false
		}
		got, n, err := Decode(buf)
		if err != nil || n != len(buf) || got != want {
			t.Logf("roundtrip %+v -> %+v (n=%d err=%v)", want, got, n, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	bad := []Instruction{
		{Op: OpADDI, Imm: ImmMax14 + 1},
		{Op: OpADDI, Imm: ImmMin14 - 1},
		{Op: OpJAL, Imm: ImmMax19 + 1},
		{Op: OpBEQ, Imm: ImmMin14 - 1},
		{Op: OpMOVIW, Imm: 1 << 32},
		{Op: OpADD, Rd: 32},
		{Op: OpInvalid},
	}
	for _, ins := range bad {
		if _, err := ins.Encode(nil); err == nil {
			t.Errorf("encode %+v: expected error", ins)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode([]byte{1, 2}); err == nil {
		t.Error("short buffer: expected error")
	}
	if _, _, err := Decode([]byte{0xff, 0, 0, 0}); err == nil {
		t.Error("invalid opcode: expected error")
	}
	// MOVID with truncated literal.
	buf, err := Instruction{Op: OpMOVID, Rd: 1, Imm: 42}.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decode(buf[:8]); err == nil {
		t.Error("truncated movid literal: expected error")
	}
}

func TestRegisterNames(t *testing.T) {
	for i := uint8(0); i < NumRegs; i++ {
		name := IntRegName(i)
		n, ok := IntRegNumber(name)
		if !ok || n != i {
			t.Errorf("IntRegNumber(%q) = %d, %v; want %d", name, n, ok, i)
		}
	}
	if n, ok := IntRegNumber("a0"); !ok || n != RegA0 {
		t.Errorf("a0 -> %d, %v", n, ok)
	}
	if n, ok := IntRegNumber("x31"); !ok || n != 31 {
		t.Errorf("x31 -> %d, %v", n, ok)
	}
	if _, ok := IntRegNumber("x32"); ok {
		t.Error("x32 should not resolve")
	}
	if n, ok := FRegNumber("f31"); !ok || n != 31 {
		t.Errorf("f31 -> %d, %v", n, ok)
	}
	for _, bad := range []string{"f32", "f-1", "f1x", "g0"} {
		if _, ok := FRegNumber(bad); ok {
			t.Errorf("FRegNumber(%q) should fail", bad)
		}
	}
}

func TestIsBranch(t *testing.T) {
	branch := []Op{OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU, OpJAL, OpJALR, OpHALT, OpEBREAK, OpSVC}
	for _, op := range branch {
		if !(Instruction{Op: op}).IsBranch() {
			t.Errorf("%s should be a branch", op)
		}
	}
	for _, op := range []Op{OpADD, OpLD, OpSD, OpCAS, OpHINT, OpFENCE} {
		if (Instruction{Op: op}).IsBranch() {
			t.Errorf("%s should not be a branch", op)
		}
	}
}

func TestDisasm(t *testing.T) {
	cases := []struct {
		ins  Instruction
		want string
	}{
		{Instruction{Op: OpADD, Rd: 10, Rs1: 11, Rs2: 12}, "add a0, a1, a2"},
		{Instruction{Op: OpADDI, Rd: 2, Rs1: 2, Imm: -16}, "addi sp, sp, -16"},
		{Instruction{Op: OpLD, Rd: 10, Rs1: 2, Imm: 8}, "ld a0, 8(sp)"},
		{Instruction{Op: OpSD, Rs2: 10, Rs1: 2, Imm: 8}, "sd a0, 8(sp)"},
		{Instruction{Op: OpBEQ, Rs1: 10, Rs2: 0, Imm: 4}, "beq a0, zero, 16"},
		{Instruction{Op: OpJAL, Rd: 1, Imm: -2}, "jal ra, -8"},
		{Instruction{Op: OpSVC, Imm: 0}, "svc 0"},
		{Instruction{Op: OpHINT, Imm: 3}, "hint 3"},
		{Instruction{Op: OpCAS, Rd: 10, Rs2: 11, Rs1: 12}, "cas a0, a1, (a2)"},
		{Instruction{Op: OpFADD, Rd: 0, Rs1: 1, Rs2: 2}, "fadd f0, f1, f2"},
		{Instruction{Op: OpNOP}, "nop"},
	}
	for _, c := range cases {
		if got := c.ins.Disasm(); got != c.want {
			t.Errorf("Disasm(%+v) = %q, want %q", c.ins, got, c.want)
		}
	}
}

func TestDisasmCode(t *testing.T) {
	var buf []byte
	var err error
	for _, ins := range []Instruction{
		{Op: OpMOVIW, Rd: 10, Imm: 7},
		{Op: OpADD, Rd: 11, Rs1: 10, Rs2: 10},
		{Op: OpHALT},
	} {
		buf, err = ins.Encode(buf)
		if err != nil {
			t.Fatal(err)
		}
	}
	out := DisasmCode(0x1000, buf)
	for _, want := range []string{"moviw a0, 7", "add a1, a0, a0", "halt"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}
