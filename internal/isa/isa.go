// Package isa defines GA64, the guest instruction set architecture emulated
// by DQEMU. GA64 is a 64-bit RISC ISA in the spirit of AArch64/RISC-V: 32
// integer registers (X0 hardwired to zero), 32 double-precision FP
// registers, load-linked/store-conditional and compare-and-swap atomics, a
// fence, a syscall instruction, and a HINT instruction whose operand carries
// thread-group scheduling hints (paper §5.3).
//
// Instructions are 32-bit words except the two long-immediate forms MOVIW
// (one trailing 32-bit literal) and MOVID/FMOVD (two trailing literal
// words); the decoder handles the variable length, much as a real DBT
// front-end handles variable-length x86.
package isa

import "fmt"

// Op identifies a GA64 operation.
type Op uint8

// Integer register-register operations (format R).
const (
	OpInvalid Op = iota

	OpADD
	OpSUB
	OpMUL
	OpDIV  // signed; divide by zero yields all-ones, INT64_MIN/-1 yields INT64_MIN
	OpDIVU // unsigned
	OpREM
	OpREMU
	OpAND
	OpOR
	OpXOR
	OpSLL
	OpSRL
	OpSRA
	OpSLT
	OpSLTU

	// Integer register-immediate operations (format I).
	OpADDI
	OpANDI
	OpORI
	OpXORI
	OpSLLI
	OpSRLI
	OpSRAI
	OpSLTI

	// Long-immediate moves (format X, variable length).
	OpMOVIW // rd = sign-extended 32-bit literal; 8 bytes total
	OpMOVID // rd = 64-bit literal; 12 bytes total

	// Loads (format I: rd = mem[rs1+imm]).
	OpLB
	OpLBU
	OpLH
	OpLHU
	OpLW
	OpLWU
	OpLD

	// Stores (format S: mem[rs1+imm] = rs2).
	OpSB
	OpSH
	OpSW
	OpSD

	// Branches (format B: compare rs1,rs2; target = pc + imm*4).
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU

	// Jumps.
	OpJAL  // format J: rd = pc+4; pc += imm*4
	OpJALR // format I: rd = pc+4; pc = (rs1+imm) &^ 1

	// Atomics. LL/SC mirror ARM's exclusive pair; CAS mirrors ARM v8.1 CAS.
	OpLL      // format I (imm=0): rd = mem64[rs1], open monitor
	OpSC      // format R: if monitor valid, mem64[rs1]=rs2, rd=0; else rd=1
	OpCAS     // format R: old=mem64[rs1]; if old==rd { mem64[rs1]=rs2 }; rd=old
	OpAMOADD  // format R: rd = mem64[rs1]; mem64[rs1] += rs2
	OpAMOSWAP // format R: rd = mem64[rs1]; mem64[rs1] = rs2
	OpFENCE   // format R (all fields zero): full barrier

	// System.
	OpSVC  // format I: syscall; number in A7 (X17), args A0..A5, result A0
	OpHINT // format I: scheduling hint, imm = thread group id; otherwise a no-op
	OpNOP  // format R
	OpHALT // format R: stop the vCPU (used by tests; _start uses exit syscall)
	OpEBREAK

	// Floating point (double precision). F-register indices share the 5-bit
	// fields; the format tables say which fields name F registers.
	OpFADD // format R: fd = fs1 + fs2
	OpFSUB
	OpFMUL
	OpFDIV
	OpFMIN
	OpFMAX
	OpFSQRT // format R: fd = sqrt(fs1)
	OpFNEG
	OpFABS
	OpFEXP // format R: fd = exp(fs1); libm folded into the ISA (see DESIGN.md)
	OpFLN  // format R: fd = ln(fs1)

	OpFLD // format I: fd = mem64[rs1+imm] as double
	OpFSD // format S: mem64[rs1+imm] = fs2 bits

	OpFMOVD  // format X: fd = 64-bit literal (bits of a double); 12 bytes
	OpFMV    // format R: fd = fs1
	OpFMVXD  // format R: rd = bits(fs1)
	OpFMVDX  // format R: fd = bitsToDouble(rs1)
	OpFCVTDL // format R: fd = double(int64 rs1)
	OpFCVTLD // format R: rd = int64(trunc fs1)
	OpFEQ    // format R: rd = fs1 == fs2
	OpFLT    // format R: rd = fs1 < fs2
	OpFLE    // format R: rd = fs1 <= fs2

	opMax // sentinel
)

// Format describes how an instruction word's fields are laid out.
type Format uint8

const (
	FormatR Format = iota // op | rd | rs1 | rs2 | funct9(unused)
	FormatI               // op | rd | rs1 | imm14 (signed)
	FormatS               // op | rs2 | rs1 | imm14 (signed)
	FormatB               // op | rs1 | rs2 | imm14 (signed, ×4)
	FormatJ               // op | rd | imm19 (signed, ×4)
	FormatX               // op | rd, plus 1 (MOVIW) or 2 (MOVID/FMOVD) literal words
)

// Instruction is one decoded GA64 instruction.
type Instruction struct {
	Op  Op
	Rd  uint8 // destination register (integer or FP per the op)
	Rs1 uint8
	Rs2 uint8
	Imm int64 // sign-extended immediate; for X-format, the full literal
}

// info captures the per-opcode static properties used by the encoder,
// decoder, disassembler and translator.
type info struct {
	name   string
	format Format
	// fdRd, fRs1, fRs2 mark fields that name F registers.
	fdRd, fRs1, fRs2 bool
}

var opInfo = [opMax]info{
	OpADD:  {name: "add", format: FormatR},
	OpSUB:  {name: "sub", format: FormatR},
	OpMUL:  {name: "mul", format: FormatR},
	OpDIV:  {name: "div", format: FormatR},
	OpDIVU: {name: "divu", format: FormatR},
	OpREM:  {name: "rem", format: FormatR},
	OpREMU: {name: "remu", format: FormatR},
	OpAND:  {name: "and", format: FormatR},
	OpOR:   {name: "or", format: FormatR},
	OpXOR:  {name: "xor", format: FormatR},
	OpSLL:  {name: "sll", format: FormatR},
	OpSRL:  {name: "srl", format: FormatR},
	OpSRA:  {name: "sra", format: FormatR},
	OpSLT:  {name: "slt", format: FormatR},
	OpSLTU: {name: "sltu", format: FormatR},

	OpADDI: {name: "addi", format: FormatI},
	OpANDI: {name: "andi", format: FormatI},
	OpORI:  {name: "ori", format: FormatI},
	OpXORI: {name: "xori", format: FormatI},
	OpSLLI: {name: "slli", format: FormatI},
	OpSRLI: {name: "srli", format: FormatI},
	OpSRAI: {name: "srai", format: FormatI},
	OpSLTI: {name: "slti", format: FormatI},

	OpMOVIW: {name: "moviw", format: FormatX},
	OpMOVID: {name: "movid", format: FormatX},

	OpLB:  {name: "lb", format: FormatI},
	OpLBU: {name: "lbu", format: FormatI},
	OpLH:  {name: "lh", format: FormatI},
	OpLHU: {name: "lhu", format: FormatI},
	OpLW:  {name: "lw", format: FormatI},
	OpLWU: {name: "lwu", format: FormatI},
	OpLD:  {name: "ld", format: FormatI},

	OpSB: {name: "sb", format: FormatS},
	OpSH: {name: "sh", format: FormatS},
	OpSW: {name: "sw", format: FormatS},
	OpSD: {name: "sd", format: FormatS},

	OpBEQ:  {name: "beq", format: FormatB},
	OpBNE:  {name: "bne", format: FormatB},
	OpBLT:  {name: "blt", format: FormatB},
	OpBGE:  {name: "bge", format: FormatB},
	OpBLTU: {name: "bltu", format: FormatB},
	OpBGEU: {name: "bgeu", format: FormatB},

	OpJAL:  {name: "jal", format: FormatJ},
	OpJALR: {name: "jalr", format: FormatI},

	OpLL:      {name: "ll", format: FormatI},
	OpSC:      {name: "sc", format: FormatR},
	OpCAS:     {name: "cas", format: FormatR},
	OpAMOADD:  {name: "amoadd", format: FormatR},
	OpAMOSWAP: {name: "amoswap", format: FormatR},
	OpFENCE:   {name: "fence", format: FormatR},

	OpSVC:    {name: "svc", format: FormatI},
	OpHINT:   {name: "hint", format: FormatI},
	OpNOP:    {name: "nop", format: FormatR},
	OpHALT:   {name: "halt", format: FormatR},
	OpEBREAK: {name: "ebreak", format: FormatR},

	OpFADD:  {name: "fadd", format: FormatR, fdRd: true, fRs1: true, fRs2: true},
	OpFSUB:  {name: "fsub", format: FormatR, fdRd: true, fRs1: true, fRs2: true},
	OpFMUL:  {name: "fmul", format: FormatR, fdRd: true, fRs1: true, fRs2: true},
	OpFDIV:  {name: "fdiv", format: FormatR, fdRd: true, fRs1: true, fRs2: true},
	OpFMIN:  {name: "fmin", format: FormatR, fdRd: true, fRs1: true, fRs2: true},
	OpFMAX:  {name: "fmax", format: FormatR, fdRd: true, fRs1: true, fRs2: true},
	OpFSQRT: {name: "fsqrt", format: FormatR, fdRd: true, fRs1: true},
	OpFNEG:  {name: "fneg", format: FormatR, fdRd: true, fRs1: true},
	OpFABS:  {name: "fabs", format: FormatR, fdRd: true, fRs1: true},
	OpFEXP:  {name: "fexp", format: FormatR, fdRd: true, fRs1: true},
	OpFLN:   {name: "fln", format: FormatR, fdRd: true, fRs1: true},

	OpFLD: {name: "fld", format: FormatI, fdRd: true},
	OpFSD: {name: "fsd", format: FormatS, fRs2: true},

	OpFMOVD:  {name: "fmovd", format: FormatX, fdRd: true},
	OpFMV:    {name: "fmv", format: FormatR, fdRd: true, fRs1: true},
	OpFMVXD:  {name: "fmv.x.d", format: FormatR, fRs1: true},
	OpFMVDX:  {name: "fmv.d.x", format: FormatR, fdRd: true},
	OpFCVTDL: {name: "fcvt.d.l", format: FormatR, fdRd: true},
	OpFCVTLD: {name: "fcvt.l.d", format: FormatR, fRs1: true},
	OpFEQ:    {name: "feq", format: FormatR, fRs1: true, fRs2: true},
	OpFLT:    {name: "flt", format: FormatR, fRs1: true, fRs2: true},
	OpFLE:    {name: "fle", format: FormatR, fRs1: true, fRs2: true},
}

// Valid reports whether op names a defined operation.
func (op Op) Valid() bool { return op > OpInvalid && op < opMax && opInfo[op].name != "" }

// String returns the mnemonic.
func (op Op) String() string {
	if !op.Valid() {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opInfo[op].name
}

// Format returns the encoding format of op.
func (op Op) Format() Format {
	return opInfo[op].format
}

// FRegFields reports which of the rd/rs1/rs2 fields of op name floating
// point registers.
func (op Op) FRegFields() (rd, rs1, rs2 bool) {
	in := opInfo[op]
	return in.fdRd, in.fRs1, in.fRs2
}

// Immediate field limits.
const (
	ImmMin14 = -(1 << 13)
	ImmMax14 = 1<<13 - 1
	ImmMin19 = -(1 << 18)
	ImmMax19 = 1<<18 - 1
)

// Size returns the encoded size of the instruction in bytes.
func (ins Instruction) Size() int64 {
	switch ins.Op {
	case OpMOVIW:
		return 8
	case OpMOVID, OpFMOVD:
		return 12
	default:
		return 4
	}
}

// Encode appends the encoded instruction to buf (little-endian words) and
// returns the extended slice. It returns an error when a field is out of
// range, so the assembler can report the offending line.
func (ins Instruction) Encode(buf []byte) ([]byte, error) {
	if !ins.Op.Valid() {
		return buf, fmt.Errorf("isa: encode: invalid op %d", ins.Op)
	}
	if ins.Rd > 31 || ins.Rs1 > 31 || ins.Rs2 > 31 {
		return buf, fmt.Errorf("isa: encode %s: register out of range", ins.Op)
	}
	word := uint32(ins.Op)
	switch ins.Op.Format() {
	case FormatR:
		word |= uint32(ins.Rd)<<8 | uint32(ins.Rs1)<<13 | uint32(ins.Rs2)<<18
	case FormatI:
		if ins.Imm < ImmMin14 || ins.Imm > ImmMax14 {
			return buf, fmt.Errorf("isa: encode %s: immediate %d out of 14-bit range", ins.Op, ins.Imm)
		}
		word |= uint32(ins.Rd)<<8 | uint32(ins.Rs1)<<13 | uint32(ins.Imm&0x3fff)<<18
	case FormatS:
		if ins.Imm < ImmMin14 || ins.Imm > ImmMax14 {
			return buf, fmt.Errorf("isa: encode %s: immediate %d out of 14-bit range", ins.Op, ins.Imm)
		}
		word |= uint32(ins.Rs2)<<8 | uint32(ins.Rs1)<<13 | uint32(ins.Imm&0x3fff)<<18
	case FormatB:
		if ins.Imm < ImmMin14 || ins.Imm > ImmMax14 {
			return buf, fmt.Errorf("isa: encode %s: branch offset %d out of range", ins.Op, ins.Imm)
		}
		word |= uint32(ins.Rs1)<<8 | uint32(ins.Rs2)<<13 | uint32(ins.Imm&0x3fff)<<18
	case FormatJ:
		if ins.Imm < ImmMin19 || ins.Imm > ImmMax19 {
			return buf, fmt.Errorf("isa: encode %s: jump offset %d out of range", ins.Op, ins.Imm)
		}
		word |= uint32(ins.Rd)<<8 | uint32(ins.Imm&0x7ffff)<<13
	case FormatX:
		word |= uint32(ins.Rd) << 8
	}
	buf = appendWord(buf, word)
	switch ins.Op {
	case OpMOVIW:
		if ins.Imm < -(1<<31) || ins.Imm > 1<<31-1 {
			return buf[:len(buf)-4], fmt.Errorf("isa: encode moviw: literal %d out of 32-bit range", ins.Imm)
		}
		buf = appendWord(buf, uint32(ins.Imm))
	case OpMOVID, OpFMOVD:
		buf = appendWord(buf, uint32(uint64(ins.Imm)))
		buf = appendWord(buf, uint32(uint64(ins.Imm)>>32))
	}
	return buf, nil
}

// Decode decodes one instruction starting at code[0]. It returns the
// instruction and the number of bytes consumed.
func Decode(code []byte) (Instruction, int, error) {
	if len(code) < 4 {
		return Instruction{}, 0, fmt.Errorf("isa: decode: short code (%d bytes)", len(code))
	}
	word := readWord(code)
	op := Op(word & 0xff)
	if !op.Valid() {
		return Instruction{}, 0, fmt.Errorf("isa: decode: invalid opcode %#x", word&0xff)
	}
	ins := Instruction{Op: op}
	switch op.Format() {
	case FormatR:
		ins.Rd = uint8(word >> 8 & 31)
		ins.Rs1 = uint8(word >> 13 & 31)
		ins.Rs2 = uint8(word >> 18 & 31)
	case FormatI:
		ins.Rd = uint8(word >> 8 & 31)
		ins.Rs1 = uint8(word >> 13 & 31)
		ins.Imm = signExtend(int64(word>>18&0x3fff), 14)
	case FormatS:
		ins.Rs2 = uint8(word >> 8 & 31)
		ins.Rs1 = uint8(word >> 13 & 31)
		ins.Imm = signExtend(int64(word>>18&0x3fff), 14)
	case FormatB:
		ins.Rs1 = uint8(word >> 8 & 31)
		ins.Rs2 = uint8(word >> 13 & 31)
		ins.Imm = signExtend(int64(word>>18&0x3fff), 14)
	case FormatJ:
		ins.Rd = uint8(word >> 8 & 31)
		ins.Imm = signExtend(int64(word>>13&0x7ffff), 19)
	case FormatX:
		ins.Rd = uint8(word >> 8 & 31)
		switch op {
		case OpMOVIW:
			if len(code) < 8 {
				return Instruction{}, 0, fmt.Errorf("isa: decode moviw: truncated literal")
			}
			ins.Imm = int64(int32(readWord(code[4:])))
			return ins, 8, nil
		case OpMOVID, OpFMOVD:
			if len(code) < 12 {
				return Instruction{}, 0, fmt.Errorf("isa: decode %s: truncated literal", op)
			}
			ins.Imm = int64(uint64(readWord(code[4:])) | uint64(readWord(code[8:]))<<32)
			return ins, 12, nil
		}
	}
	return ins, 4, nil
}

// IsBranch reports whether the instruction may change control flow, i.e.
// whether it terminates a translation block.
func (ins Instruction) IsBranch() bool {
	switch ins.Op {
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU, OpJAL, OpJALR, OpHALT, OpEBREAK, OpSVC:
		return true
	}
	return false
}

func signExtend(v int64, bits uint) int64 {
	shift := 64 - bits
	return v << shift >> shift
}

func appendWord(buf []byte, w uint32) []byte {
	return append(buf, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
}

func readWord(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
