package minicc

import "fmt"

type parser struct {
	file string
	toks []token
	pos  int
}

func (p *parser) errorf(line int, format string, args ...interface{}) error {
	return &compileError{file: p.file, line: line, msg: fmt.Sprintf(format, args...)}
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) is(text string) bool {
	t := p.cur()
	return (t.kind == tokPunct || t.kind == tokKeyword) && t.text == text
}

func (p *parser) accept(text string) bool {
	if p.is(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errorf(p.cur().line, "expected %q, got %q", text, p.cur().text)
	}
	return nil
}

func (p *parser) isTypeStart() bool {
	t := p.cur()
	return t.kind == tokKeyword && (t.text == "long" || t.text == "double" || t.text == "char" || t.text == "void")
}

// parseType parses a base type plus pointer stars.
func (p *parser) parseType() (*Type, error) {
	t := p.next()
	var base *Type
	switch t.text {
	case "long":
		base = tyLong
	case "double":
		base = tyDouble
	case "char":
		base = tyChar
	case "void":
		base = tyVoid
	default:
		return nil, p.errorf(t.line, "expected type, got %q", t.text)
	}
	for p.accept("*") {
		base = ptrTo(base)
	}
	return base, nil
}

func (p *parser) parseProgram() (*program, error) {
	prog := &program{}
	for p.cur().kind != tokEOF {
		if p.accept("extern") {
			ret, err := p.parseType()
			if err != nil {
				return nil, err
			}
			name := p.next()
			if name.kind != tokIdent {
				return nil, p.errorf(name.line, "expected extern name")
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			// Parameter types are not checked; skip to ')'.
			depth := 1
			for depth > 0 {
				t := p.next()
				if t.kind == tokEOF {
					return nil, p.errorf(t.line, "unterminated extern declaration")
				}
				if t.text == "(" {
					depth++
				}
				if t.text == ")" {
					depth--
				}
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			prog.externs = append(prog.externs, &externDecl{name: name.text, ret: ret})
			continue
		}
		if !p.isTypeStart() {
			return nil, p.errorf(p.cur().line, "expected declaration, got %q", p.cur().text)
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name := p.next()
		if name.kind != tokIdent {
			return nil, p.errorf(name.line, "expected name, got %q", name.text)
		}
		if p.is("(") {
			fn, err := p.parseFunc(ty, name)
			if err != nil {
				return nil, err
			}
			prog.funcs = append(prog.funcs, fn)
			continue
		}
		g, err := p.parseGlobal(ty, name)
		if err != nil {
			return nil, err
		}
		prog.globals = append(prog.globals, g)
	}
	return prog, nil
}

func (p *parser) parseFunc(ret *Type, name token) (*funcDecl, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	fn := &funcDecl{name: name.text, ret: ret, line: name.line}
	if !p.accept(")") {
		for {
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if ty.Kind == KindVoid && !ty.isPtr() {
				if len(fn.params) == 0 && p.is(")") { // f(void)
					p.next()
					return p.finishFunc(fn)
				}
				return nil, p.errorf(p.cur().line, "void parameter")
			}
			pname := p.next()
			if pname.kind != tokIdent {
				return nil, p.errorf(pname.line, "expected parameter name")
			}
			fn.params = append(fn.params, param{name: pname.text, ty: ty})
			if p.accept(")") {
				break
			}
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
	}
	return p.finishFunc(fn)
}

func (p *parser) finishFunc(fn *funcDecl) (*funcDecl, error) {
	if len(fn.params) > 8 {
		return nil, p.errorf(fn.line, "at most 8 parameters supported")
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.body = body
	return fn, nil
}

func (p *parser) parseGlobal(ty *Type, name token) (*globalDecl, error) {
	g := &globalDecl{name: name.text, ty: ty, arrayLen: -1, line: name.line}
	if p.accept("[") {
		lenTok := p.next()
		if lenTok.kind != tokInt || lenTok.ival <= 0 {
			return nil, p.errorf(lenTok.line, "array length must be a positive integer literal")
		}
		g.arrayLen = lenTok.ival
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if p.accept("=") {
		if g.arrayLen >= 0 {
			if err := p.expect("{"); err != nil {
				return nil, err
			}
			for !p.accept("}") {
				e, err := p.parseConstLit()
				if err != nil {
					return nil, err
				}
				g.initList = append(g.initList, e)
				if !p.accept(",") && !p.is("}") {
					return nil, p.errorf(p.cur().line, "expected ',' or '}' in initializer")
				}
			}
			if int64(len(g.initList)) > g.arrayLen {
				return nil, p.errorf(g.line, "too many initializers")
			}
		} else {
			t := p.cur()
			switch {
			case t.kind == tokStr:
				p.next()
				s := t.text
				g.initS = &s
			default:
				e, err := p.parseConstLit()
				if err != nil {
					return nil, err
				}
				switch v := e.(type) {
				case *intLit:
					g.initI = &v.val
				case *floatLit:
					g.initF = &v.val
				}
			}
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return g, nil
}

// parseConstLit parses an optionally negated numeric literal.
func (p *parser) parseConstLit() (expr, error) {
	neg := p.accept("-")
	t := p.next()
	switch t.kind {
	case tokInt:
		v := t.ival
		if neg {
			v = -v
		}
		return &intLit{val: v}, nil
	case tokFloat:
		v := t.fval
		if neg {
			v = -v
		}
		return &floatLit{val: v}, nil
	}
	return nil, p.errorf(t.line, "expected constant literal, got %q", t.text)
}

func (p *parser) parseBlock() (*block, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &block{}
	for !p.accept("}") {
		if p.cur().kind == tokEOF {
			return nil, p.errorf(p.cur().line, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.stmts = append(b.stmts, s)
	}
	return b, nil
}

func (p *parser) parseStmt() (stmt, error) {
	t := p.cur()
	switch {
	case p.is("{"):
		return p.parseBlock()
	case p.isTypeStart():
		return p.parseDecl()
	case p.accept("if"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var els stmt
		if p.accept("else") {
			if els, err = p.parseStmt(); err != nil {
				return nil, err
			}
		}
		return &ifStmt{c: c, then: then, els: els}, nil
	case p.accept("while"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &whileStmt{c: c, body: body}, nil
	case p.accept("for"):
		return p.parseFor()
	case p.accept("return"):
		r := &returnStmt{line: t.line}
		if !p.is(";") {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.x = x
		}
		return r, p.expect(";")
	case p.accept("break"):
		return &breakStmt{line: t.line}, p.expect(";")
	case p.accept("continue"):
		return &continueStmt{line: t.line}, p.expect(";")
	case p.accept(";"):
		return &block{}, nil
	default:
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &exprStmt{x: x}, p.expect(";")
	}
}

func (p *parser) parseDecl() (stmt, error) {
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if ty.Kind == KindVoid && !ty.isPtr() {
		return nil, p.errorf(p.cur().line, "void variable")
	}
	name := p.next()
	if name.kind != tokIdent {
		return nil, p.errorf(name.line, "expected variable name, got %q", name.text)
	}
	d := &declStmt{name: name.text, ty: ty, arrayLen: -1, line: name.line}
	if p.accept("[") {
		lenTok := p.next()
		if lenTok.kind != tokInt || lenTok.ival <= 0 {
			return nil, p.errorf(lenTok.line, "array length must be a positive integer literal")
		}
		d.arrayLen = lenTok.ival
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if p.accept("=") {
		if d.arrayLen >= 0 {
			return nil, p.errorf(name.line, "local array initializers are not supported")
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.init = x
	}
	return d, p.expect(";")
}

func (p *parser) parseFor() (stmt, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	f := &forStmt{}
	if !p.accept(";") {
		if p.isTypeStart() {
			s, err := p.parseDecl()
			if err != nil {
				return nil, err
			}
			f.init = s
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.init = &exprStmt{x: x}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
	}
	if !p.is(";") {
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.c = c
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.is(")") {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.post = post
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	f.body = body
	return f, nil
}

// ---- Expressions (precedence climbing) ----

func (p *parser) parseExpr() (expr, error) { return p.parseAssign() }

var compoundOps = map[string]string{
	"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
	"&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}

func (p *parser) parseAssign() (expr, error) {
	l, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tokPunct {
		if t.text == "=" {
			p.next()
			r, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			return &assign{op: "=", l: l, r: r, line: t.line}, nil
		}
		if base, ok := compoundOps[t.text]; ok {
			p.next()
			r, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			return &assign{op: base, l: l, r: r, line: t.line}, nil
		}
	}
	return l, nil
}

func (p *parser) parseTernary() (expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if !p.is("?") {
		return c, nil
	}
	line := p.next().line
	t, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	f, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &cond{c: c, t: t, f: f, line: line}, nil
}

// binLevels lists binary operators from lowest to highest precedence.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseBinary(level int) (expr, error) {
	if level == len(binLevels) {
		return p.parseUnary()
	}
	l, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		matched := false
		if t.kind == tokPunct {
			for _, op := range binLevels[level] {
				if t.text == op {
					matched = true
					break
				}
			}
		}
		if !matched {
			return l, nil
		}
		p.next()
		r, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		l = &binary{op: t.text, l: l, r: r, line: t.line}
	}
}

func (p *parser) parseUnary() (expr, error) {
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "-", "!", "~", "*", "&":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &unary{op: t.text, x: x, line: t.line}, nil
		case "(":
			// Possible cast: "(" type ")" unary.
			if p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokKeyword && keywordIsType(p.toks[p.pos+1].text) {
				p.next() // (
				ty, err := p.parseType()
				if err != nil {
					return nil, err
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				x, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				return &cast{to: ty, x: x, line: t.line}, nil
			}
		}
	}
	return p.parsePostfix()
}

func keywordIsType(s string) bool {
	return s == "long" || s == "double" || s == "char" || s == "void"
}

func (p *parser) parsePostfix() (expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.is("["):
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &index{base: x, idx: idx, line: t.line}
		case p.is("++") || p.is("--"):
			p.next()
			x = &incDec{op: t.text, l: x, line: t.line}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.next()
	switch t.kind {
	case tokInt:
		return &intLit{val: t.ival}, nil
	case tokFloat:
		return &floatLit{val: t.fval}, nil
	case tokStr:
		return &strLit{val: t.text}, nil
	case tokIdent:
		if p.is("(") {
			p.next()
			c := &call{name: t.text, line: t.line}
			if !p.accept(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					c.args = append(c.args, a)
					if p.accept(")") {
						break
					}
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
			}
			return c, nil
		}
		return &varRef{name: t.text, line: t.line}, nil
	case tokPunct:
		if t.text == "(" {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return x, p.expect(")")
		}
	}
	return nil, p.errorf(t.line, "unexpected token %q", t.text)
}
