package dqemu_test

import (
	"strings"
	"testing"

	"dqemu"
)

func TestPublicAPIQuickstart(t *testing.T) {
	im, err := dqemu.Compile("hello.mc", `
long main() {
	print_str("hello from ");
	print_long(num_nodes());
	print_str(" nodes\n");
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dqemu.DefaultConfig()
	cfg.Slaves = 2
	res, err := dqemu.Run(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Console != "hello from 3 nodes\n" {
		t.Errorf("console = %q", res.Console)
	}
	if res.ExitCode != 0 || res.TimeNs <= 0 {
		t.Errorf("exit=%d time=%d", res.ExitCode, res.TimeNs)
	}
}

func TestPublicAPIAssembly(t *testing.T) {
	im, err := dqemu.Assemble(dqemu.Source{Name: "main.s", Text: `
	.global main
main:
	li  a0, 21
	add a0, a0, a0
	ret
`})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dqemu.Run(im, dqemu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 42 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestPublicAPIBareAssembly(t *testing.T) {
	im, err := dqemu.AssembleBare(dqemu.Source{Name: "s.s", Text: `
_start:
	li  a7, 94       ; exit_group
	li  a0, 7
	svc 0
`})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dqemu.Run(im, dqemu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 7 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestPublicAPIClusterVFS(t *testing.T) {
	im, err := dqemu.Compile("cat.mc", `
long main() {
	long fd = open_file("/in.txt", 0);
	if (fd < 0) return 1;
	char buf[128];
	long n = sys_read(fd, buf, 128);
	sys_write(1, buf, n);
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := dqemu.NewCluster(im, dqemu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.VFS().AddFile("/in.txt", []byte("through the VFS"))
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Console != "through the VFS" {
		t.Errorf("console = %q", res.Console)
	}
}

func TestCompileToAsm(t *testing.T) {
	out, err := dqemu.CompileToAsm("t.mc", "long main() { return 1 + 2; }")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "main:") {
		t.Errorf("no main label in output:\n%s", out)
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	if _, err := dqemu.Compile("bad.mc", "long main() { return undefined_thing; }"); err == nil {
		t.Error("expected compile error")
	}
}

func TestOptimizationToggles(t *testing.T) {
	im, err := dqemu.Compile("walk.mc", `
long data[20480];
long out;
long worker(long a) {
	long s = 0;
	for (long i = 0; i < 20480; i++) s += data[i];
	out = s;
	return 0;
}
long main() {
	for (long i = 0; i < 20480; i++) data[i] = 1;
	thread_join(thread_create((long)worker, 0));
	print_long(out);
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dqemu.DefaultConfig()
	cfg.Slaves = 1
	plain, err := dqemu.Run(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Forwarding = true
	fwd, err := dqemu.Run(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Console != "20480" || fwd.Console != "20480" {
		t.Fatalf("results: %q %q", plain.Console, fwd.Console)
	}
	if fwd.TimeNs >= plain.TimeNs {
		t.Errorf("forwarding should help a sequential walk: %d vs %d", fwd.TimeNs, plain.TimeNs)
	}
	if fwd.Dir.Pushes == 0 {
		t.Error("no pushes recorded")
	}
}
