package proto

import "testing"

func TestReplayCache(t *testing.T) {
	c := NewReplayCache()

	// Unsequenced requests (legacy / exit) always execute.
	for i := 0; i < 3; i++ {
		if o, _ := c.Admit(1, 0); o != Execute {
			t.Fatalf("seq 0 admit %d: %v, want Execute", i, o)
		}
	}

	// Fresh seq executes; a duplicate before completion is suppressed.
	if o, _ := c.Admit(1, 1); o != Execute {
		t.Fatal("fresh seq 1 not executed")
	}
	if o, _ := c.Admit(1, 1); o != Suppress {
		t.Fatal("in-flight duplicate not suppressed")
	}

	// After completion the duplicate replays the saved return value.
	c.Complete(1, 1, 0xbeef)
	if o, ret := c.Admit(1, 1); o != Replay || ret != 0xbeef {
		t.Fatalf("completed duplicate: %v ret %#x, want Replay 0xbeef", o, ret)
	}

	// A newer seq executes and invalidates the old entry; the old seq is
	// then older-than-newest and suppressed, not replayed.
	if o, _ := c.Admit(1, 2); o != Execute {
		t.Fatal("seq 2 not executed")
	}
	if o, _ := c.Admit(1, 1); o != Suppress {
		t.Fatal("superseded seq 1 not suppressed")
	}

	// Completing a stale seq must not poison the current entry.
	c.Complete(1, 1, 0xdead)
	if o, _ := c.Admit(1, 2); o != Suppress {
		t.Fatal("in-flight seq 2 affected by stale Complete")
	}
	c.Complete(1, 2, 7)
	if o, ret := c.Admit(1, 2); o != Replay || ret != 7 {
		t.Fatalf("seq 2 replay: %v ret %d", o, ret)
	}

	// Threads are independent.
	if o, _ := c.Admit(2, 2); o != Execute {
		t.Fatal("tid 2 seq 2 shares state with tid 1")
	}

	// Forget drops the thread: the same seq executes again afterwards.
	c.Forget(1)
	if o, _ := c.Admit(1, 2); o != Execute {
		t.Fatal("forgotten tid did not reset")
	}

	if c.Replayed != 2 || c.Suppressed != 3 {
		t.Fatalf("counters: replayed=%d suppressed=%d, want 2 and 3", c.Replayed, c.Suppressed)
	}
}
