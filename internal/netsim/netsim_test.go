package netsim

import (
	"testing"

	"dqemu/internal/proto"
	"dqemu/internal/sim"
)

func TestDeliveryTiming(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	nw := New(k, cfg, 2)
	var deliveredAt int64 = -1
	nw.Register(0, func(m *proto.Msg) {})
	nw.Register(1, func(m *proto.Msg) { deliveredAt = k.Now() })

	m := &proto.Msg{Kind: proto.KPageReq, From: 0, To: 1}
	nw.Send(m)
	k.Run()
	txTime := m.WireSize() * 8 // 1 Gb/s -> 8 ns per byte
	want := txTime + cfg.LatencyNs + cfg.ProcNs
	if deliveredAt != want {
		t.Errorf("delivered at %d, want %d", deliveredAt, want)
	}
}

func TestPageContentCost(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	nw := New(k, cfg, 2)
	var deliveredAt int64
	nw.Register(0, func(m *proto.Msg) {})
	nw.Register(1, func(m *proto.Msg) { deliveredAt = k.Now() })
	m := &proto.Msg{Kind: proto.KPageContent, From: 0, To: 1, Data: make([]byte, 4096)}
	nw.Send(m)
	k.Run()
	// 4160 bytes * 8 ns + 28 µs + 150 µs ≈ 211 µs.
	if deliveredAt < 200_000 || deliveredAt > 225_000 {
		t.Errorf("page content delivery = %d ns", deliveredAt)
	}
}

func TestSenderSerialization(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	nw := New(k, cfg, 2)
	var times []int64
	nw.Register(0, func(m *proto.Msg) {})
	nw.Register(1, func(m *proto.Msg) { times = append(times, k.Now()) })
	// Two large messages from the same sender must serialize on the NIC.
	for i := 0; i < 2; i++ {
		nw.Send(&proto.Msg{Kind: proto.KPush, From: 0, To: 1, Data: make([]byte, 4096)})
	}
	k.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	gap := times[1] - times[0]
	txTime := int64((4096 + 64) * 8)
	if gap < txTime-500 || gap > txTime+cfg.StreamProcNs+500 {
		t.Errorf("gap = %d, want about %d", gap, txTime)
	}
}

func TestReceiverSerializationPerLink(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	nw := New(k, cfg, 3)
	var times []int64
	for i := 0; i < 3; i++ {
		i := i
		nw.Register(i, func(m *proto.Msg) {
			if i == 0 {
				times = append(times, k.Now())
			}
		})
	}
	// Two messages from the same sender serialize in the receiver's manager
	// thread for that link (ProcNs apart, beyond the tx serialization).
	nw.Send(&proto.Msg{Kind: proto.KPageReq, From: 1, To: 0})
	nw.Send(&proto.Msg{Kind: proto.KInvAck, From: 1, To: 0})
	k.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	if gap := times[1] - times[0]; gap < cfg.ProcNs {
		t.Errorf("same-link messages did not serialize: gap %d < %d", gap, cfg.ProcNs)
	}

	// Messages from different senders are handled by different manager
	// threads and may overlap: the second arrives ProcNs after the first
	// only if serialized; here they should be ~simultaneous.
	k2 := sim.NewKernel()
	nw2 := New(k2, cfg, 3)
	times = nil
	for i := 0; i < 3; i++ {
		i := i
		nw2.Register(i, func(m *proto.Msg) {
			if i == 0 {
				times = append(times, k2.Now())
			}
		})
	}
	nw2.Send(&proto.Msg{Kind: proto.KPageReq, From: 1, To: 0})
	nw2.Send(&proto.Msg{Kind: proto.KPageReq, From: 2, To: 0})
	k2.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	if gap := times[1] - times[0]; gap >= cfg.ProcNs {
		t.Errorf("cross-link messages over-serialized: gap %d", gap)
	}
}

func TestLocalDelivery(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	nw := New(k, cfg, 1)
	var at int64 = -1
	nw.Register(0, func(m *proto.Msg) { at = k.Now() })
	nw.Send(&proto.Msg{Kind: proto.KPageReq, From: 0, To: 0})
	k.Run()
	if at != cfg.LocalNs {
		t.Errorf("local delivery at %d, want %d", at, cfg.LocalNs)
	}
}

func TestPushUsesStreamProcessing(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig()
	nw := New(k, cfg, 2)
	var reqAt, pushAt int64
	nw.Register(0, func(m *proto.Msg) {})
	nw.Register(1, func(m *proto.Msg) {
		if m.Kind == proto.KPush {
			pushAt = k.Now()
		} else {
			reqAt = k.Now()
		}
	})
	nw.Send(&proto.Msg{Kind: proto.KInvalidate, From: 0, To: 1})
	k.Run()
	k2 := sim.NewKernel()
	nw2 := New(k2, cfg, 2)
	nw2.Register(0, func(m *proto.Msg) {})
	nw2.Register(1, func(m *proto.Msg) { pushAt = k2.Now() })
	nw2.Send(&proto.Msg{Kind: proto.KPush, From: 0, To: 1})
	k2.Run()
	if pushAt >= reqAt {
		t.Errorf("push (%d) should be cheaper than fault-path message (%d)", pushAt, reqAt)
	}
}

func TestStats(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, DefaultConfig(), 2)
	nw.Register(0, func(m *proto.Msg) {})
	nw.Register(1, func(m *proto.Msg) {})
	nw.Send(&proto.Msg{Kind: proto.KPageReq, From: 0, To: 1})
	nw.Send(&proto.Msg{Kind: proto.KPageContent, From: 1, To: 0, Data: make([]byte, 100)})
	k.Run()
	if nw.Stats.Msgs != 2 {
		t.Errorf("msgs = %d", nw.Stats.Msgs)
	}
	if nw.Stats.ByKind[proto.KPageReq] != 1 || nw.Stats.ByKind[proto.KPageContent] != 1 {
		t.Error("per-kind stats wrong")
	}
	if nw.Stats.Bytes == 0 || nw.Stats.BusyTxNs == 0 {
		t.Error("byte/tx stats empty")
	}
}

// The per-kind tables are sized from proto.KindCount plus the overflow
// bucket; if a new kind were added past the array a Send would silently fall
// off the old fixed size. This locks every defined kind to a counted slot
// with byte accounting, and reserves the last slot for out-of-range kinds.
var _ [proto.KindCount + 1]uint64 = Stats{}.ByKind

func TestStatsCoverEveryKind(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, DefaultConfig(), 2)
	nw.Register(0, func(m *proto.Msg) {})
	nw.Register(1, func(m *proto.Msg) {})
	for kind := proto.Kind(0); kind < proto.KindCount; kind++ {
		nw.Send(&proto.Msg{Kind: kind, From: 0, To: 1, Data: make([]byte, 16)})
	}
	k.Run()
	for kind := proto.Kind(0); kind < proto.KindCount; kind++ {
		if nw.Stats.ByKind[kind] != 1 {
			t.Errorf("kind %v counted %d times", kind, nw.Stats.ByKind[kind])
		}
		if want := uint64(proto.HeaderSize + 16); nw.Stats.BytesByKind[kind] != want {
			t.Errorf("kind %v bytes = %d, want %d", kind, nw.Stats.BytesByKind[kind], want)
		}
	}
	if nw.Stats.Msgs != uint64(proto.KindCount) {
		t.Errorf("msgs = %d, want %d", nw.Stats.Msgs, proto.KindCount)
	}
}

func TestSendRoutesOutOfRangeKindToOverflowBucket(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, DefaultConfig(), 2)
	nw.Register(0, func(m *proto.Msg) {})
	nw.Register(1, func(m *proto.Msg) {})
	nw.Send(&proto.Msg{Kind: proto.KindCount, From: 0, To: 1, Data: make([]byte, 8)})
	nw.Send(&proto.Msg{Kind: proto.KindCount + 9, From: 0, To: 1})
	k.Run()
	if nw.Stats.ByKind[OverflowKind] != 2 {
		t.Errorf("overflow bucket = %d, want 2", nw.Stats.ByKind[OverflowKind])
	}
	if want := uint64(2*proto.HeaderSize + 8); nw.Stats.BytesByKind[OverflowKind] != want {
		t.Errorf("overflow bytes = %d, want %d", nw.Stats.BytesByKind[OverflowKind], want)
	}
	if nw.Stats.Msgs != 2 {
		t.Errorf("msgs = %d, want 2", nw.Stats.Msgs)
	}
	for kind := proto.Kind(0); kind < proto.KindCount; kind++ {
		if nw.Stats.ByKind[kind] != 0 {
			t.Errorf("kind %v polluted by overflow routing", kind)
		}
	}
}

// The fault injector's duplicate path creates a second wire copy; its
// accounting must mirror Send's — same counters, same overflow clamp —
// otherwise Stats.Bytes diverges from the traffic transmit actually models.
func TestFaultDuplicateCopiesAreCounted(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, DefaultConfig(), 2)
	delivered := 0
	nw.Register(0, func(m *proto.Msg) {})
	nw.Register(1, func(m *proto.Msg) { delivered++ })
	nw.SetFaults(&FaultPlan{Seed: 1, DupRate: 1.0})
	nw.Send(&proto.Msg{Kind: proto.KPageReq, From: 0, To: 1, Data: make([]byte, 32)})
	k.Run()
	if delivered != 2 {
		t.Fatalf("delivered = %d, want original + duplicate", delivered)
	}
	if nw.FaultStats.Duplicated != 1 {
		t.Fatalf("duplicated = %d", nw.FaultStats.Duplicated)
	}
	if nw.Stats.Msgs != 2 {
		t.Errorf("msgs = %d, want 2 (both wire copies)", nw.Stats.Msgs)
	}
	if nw.Stats.ByKind[proto.KPageReq] != 2 {
		t.Errorf("ByKind[KPageReq] = %d, want 2", nw.Stats.ByKind[proto.KPageReq])
	}
	if want := uint64(2 * (proto.HeaderSize + 32)); nw.Stats.Bytes != want {
		t.Errorf("bytes = %d, want %d", nw.Stats.Bytes, want)
	}
	if nw.Stats.BytesByKind[proto.KPageReq] != nw.Stats.Bytes {
		t.Errorf("per-kind bytes %d != total %d",
			nw.Stats.BytesByKind[proto.KPageReq], nw.Stats.Bytes)
	}
}

// An out-of-range kind surviving fault injection must land in the overflow
// bucket on the duplicate path too (the "mirror guard" of the Send one).
func TestFaultDuplicateOverflowKind(t *testing.T) {
	k := sim.NewKernel()
	nw := New(k, DefaultConfig(), 2)
	nw.Register(0, func(m *proto.Msg) {})
	nw.Register(1, func(m *proto.Msg) {})
	nw.SetFaults(&FaultPlan{Seed: 1, DupRate: 1.0})
	nw.Send(&proto.Msg{Kind: proto.KindCount + 3, From: 0, To: 1})
	k.Run()
	if nw.Stats.ByKind[OverflowKind] != 2 {
		t.Errorf("overflow bucket = %d, want 2 (original + duplicate)",
			nw.Stats.ByKind[OverflowKind])
	}
}
