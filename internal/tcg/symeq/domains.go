package symeq

import "math/bits"

// computeDomains fills e.kz/e.ko (known bits) and e.lo/e.hi (unsigned
// interval) from the operand domains. Called once at construction; Const,
// Var and Fun nodes set theirs directly. Both domains are conservative:
// a bit is marked known, or a bound tightened, only when it holds for every
// assignment of the free variables.
func (e *Expr) computeDomains() {
	x, y := e.X, e.Y
	e.kz, e.ko = 0, 0
	e.lo, e.hi = 0, ^uint64(0)

	switch e.Op {
	case Add:
		e.kz, e.ko = addKnown(x.kz, x.ko, y.kz, y.ko, 0)
		if s, carry := bits.Add64(x.hi, y.hi, 0); carry == 0 {
			e.lo, e.hi = x.lo+y.lo, s
		}
	case Sub:
		// a - b == a + ^b + 1, with ^b's known bits swapped.
		e.kz, e.ko = addKnown(x.kz, x.ko, y.ko, y.kz, 1)
		if x.lo >= y.hi {
			e.lo, e.hi = x.lo-y.hi, x.hi-y.lo
		}
	case Mul:
		// Trailing zeros accumulate; track only that low-bit mask.
		tz := bits.TrailingZeros64(^x.kz) + bits.TrailingZeros64(^y.kz)
		if tz > 63 {
			tz = 63
		}
		e.kz = (uint64(1) << tz) - 1
		if hi, lo := bits.Mul64(x.hi, y.hi); hi == 0 {
			e.lo, e.hi = x.lo*y.lo, lo
			if l, c := bits.Mul64(x.lo, y.lo); c != 0 || l != x.lo*y.lo {
				e.lo = 0
			}
		}
	case And:
		e.ko = x.ko & y.ko
		e.kz = x.kz | y.kz
		e.lo, e.hi = 0, minU(x.hi, y.hi)
	case Or:
		e.ko = x.ko | y.ko
		e.kz = x.kz & y.kz
		e.lo = maxU(x.lo, y.lo)
		e.hi = bitLenCeil(x.hi | y.hi)
	case Xor:
		e.ko = (x.ko & y.kz) | (x.kz & y.ko)
		e.kz = (x.kz & y.kz) | (x.ko & y.ko)
		e.lo, e.hi = 0, bitLenCeil(x.hi|y.hi)
	case Shl:
		if c, ok := y.IsConst(); ok {
			s := c & 63
			e.ko = x.ko << s
			e.kz = x.kz<<s | (uint64(1)<<s - 1)
			if x.hi <= (^uint64(0))>>s {
				e.lo, e.hi = x.lo<<s, x.hi<<s
			}
		}
	case Shr:
		if c, ok := y.IsConst(); ok {
			s := c & 63
			e.ko = x.ko >> s
			e.kz = x.kz>>s | ^((^uint64(0))>>s)
			e.lo, e.hi = x.lo>>s, x.hi>>s
		}
	case Sar:
		if c, ok := y.IsConst(); ok {
			s := c & 63
			sign := uint64(1) << 63
			switch {
			case x.kz&sign != 0: // sign known clear: behaves like Shr
				e.ko = x.ko >> s
				e.kz = x.kz>>s | ^((^uint64(0))>>s)
				e.lo, e.hi = x.lo>>s, x.hi>>s
			case x.ko&sign != 0: // sign known set: high bits fill with ones
				e.ko = uint64(int64(x.ko)>>s) | ^((^uint64(0))>>s)
				e.kz = x.kz >> s
			default:
				e.ko = (x.ko >> s) &^ (^((^uint64(0)) >> s))
				e.kz = (x.kz >> s) &^ (^((^uint64(0)) >> s))
			}
		}
	case Eq, LtS, LtU:
		e.kz, e.ko = ^uint64(1), 0
		e.lo, e.hi = 0, 1
	case Div, DivU, Rem, RemU:
		// Totalized division: no useful bits in general.
	}

	// The domains sharpen each other: known bits bound the range, the range
	// can pin high bits.
	e.lo = maxU(e.lo, e.ko)
	e.hi = minU(e.hi, ^e.kz)
	if e.lo > e.hi {
		// Inconsistent only if a bug upstream; collapse to full range rather
		// than manufacture a false refutation.
		e.lo, e.hi = 0, ^uint64(0)
	}
	// High bits above the interval ceiling are known zero.
	e.kz |= ^bitLenCeil(e.hi)
}

// addKnown propagates known bits through a 64-bit add with the given
// initial carry, walking bit by bit with a three-valued carry.
func addKnown(akz, ako, bkz, bko uint64, carry int) (kz, ko uint64) {
	// carry: 0 known-zero, 1 known-one, 2 unknown
	for i := 0; i < 64; i++ {
		bit := uint64(1) << i
		aKnown := (akz|ako)&bit != 0
		bKnown := (bkz|bko)&bit != 0
		av := ako & bit
		bv := bko & bit
		if aKnown && bKnown && carry != 2 {
			sum := uint64(carry)
			if av != 0 {
				sum++
			}
			if bv != 0 {
				sum++
			}
			if sum&1 != 0 {
				ko |= bit
			} else {
				kz |= bit
			}
			carry = int(sum >> 1)
			continue
		}
		// Result bit unknown. The carry out is still known when the two
		// addend bits agree and force it regardless of carry in.
		switch {
		case aKnown && bKnown && av != 0 && bv != 0:
			carry = 1
		case aKnown && bKnown && av == 0 && bv == 0:
			carry = 0
		default:
			carry = 2
		}
	}
	return kz, ko
}

// bitLenCeil rounds v up to an all-ones mask of the same bit length.
func bitLenCeil(v uint64) uint64 {
	n := bits.Len64(v)
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

func minU(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
