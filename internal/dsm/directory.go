// Package dsm implements the master node's page-level directory-based MSI
// coherence protocol (§4.2), together with the false-sharing page splitter
// (§5.1) and the read-ahead data forwarder (§5.2). The package is pure
// protocol logic: all I/O goes through the Env interface, which the cluster
// core implements on top of the simulated (or live) network. That keeps the
// protocol unit-testable with a mock environment.
//
// Node 0 is the master and the home of every page: the master's guest
// memory region holds the authoritative copy of any page that no node holds
// in Modified state. Directory entries start as Owner == 0 ("home owns"),
// matching a freshly loaded program whose data all lives on the master.
package dsm

import (
	"fmt"

	"dqemu/internal/mem"
)

// Master is the node id of the master/home node.
const Master = 0

// NoOwner marks a page whose current copy is the home copy.
const NoOwner = -1

// Request is one coherence request from a faulting guest thread.
type Request struct {
	Node  int
	TID   int64
	Page  uint64
	Addr  uint64 // exact faulting address (drives the false-sharing detector)
	Write bool
	// Full asks for content even where the directory would normally answer
	// with a reaffirmation or suppress the grant: the requester holds the
	// access right but lost the data (the wire layer's delta transfer could
	// not be applied against its twin and was discarded).
	Full bool
}

// Env is what the directory needs from its host (the master node).
type Env interface {
	// SendContent ships the home copy of page to a node with the given
	// permission. For node == Master it installs locally.
	SendContent(to int, page uint64, perm mem.Perm)
	// SendReaffirm tells a node that already holds the freshest copy to
	// keep its data and use the given permission. Sent when the directory
	// receives a redundant request from the current owner (e.g. a read and
	// a write fault raced): shipping the stale home copy would destroy the
	// owner's modifications.
	SendReaffirm(to int, page uint64, perm mem.Perm)
	// SendInvalidate tells a sharer to drop its copy; the sharer must
	// answer with OnInvAck.
	SendInvalidate(to int, page uint64)
	// SendFetch asks the owner for its copy (invalidate=true also revokes
	// it); the owner must answer with OnFetchReply.
	SendFetch(owner int, page uint64, invalidate bool)
	// SendRetry tells a node to re-execute the faulting access without
	// installing anything (the page layout changed under it).
	SendRetry(to int, page uint64, tid int64)
	// HomeWriteback stores data as the new home copy.
	HomeWriteback(page uint64, data []byte)
	// HomeSetPerm adjusts the master's own access right to the home copy.
	HomeSetPerm(page uint64, perm mem.Perm)
	// BroadcastRemap announces a page split to every node (incl. master).
	BroadcastRemap(orig uint64, shadows []uint64)
	// PushPage forwards the home copy of page to a node in Shared state
	// (data forwarding); unlike SendContent it flows off the fault path.
	PushPage(to int, page uint64)
	// SplitHome redistributes the home copy of orig into its shadow pages
	// (equal parts, each at the same in-page offset).
	SplitHome(orig uint64, shadows []uint64)
}

// Stats counts protocol activity.
type Stats struct {
	Reads       uint64
	Writes      uint64
	Fetches     uint64
	Invalidates uint64
	Pushes      uint64
	Splits      uint64
	Retries     uint64
	Queued      uint64
	Suppressed  uint64 // demand reads answered by an in-flight push
	FullResends uint64 // full-content re-grants after a delta mismatch

	// ForwardHits/ForwardWasted mirror the forwarder's AIMD sensors at the
	// end of a run (copied in by the embedder; the directory itself never
	// reads them).
	ForwardHits   uint64
	ForwardWasted uint64
}

type entry struct {
	owner   int // NoOwner, Master, or a slave node id
	sharers NodeSet

	busy       bool
	acksLeft   int
	fetchFrom  int     // slave a fetch is outstanding to (0 = none)
	invPending NodeSet // nodes that owe an invalidation ack
	grant      *Request  // request waiting for acks/fetch
	split      bool      // a split transaction is in flight
	pending    []Request // requests queued while busy
	retired    bool      // page was split; always answer Retry
}

// Directory is the master's coherence directory.
type Directory struct {
	env   Env
	pages map[uint64]*entry
	fwd   *Forwarder
	split *Splitter
	Stats Stats
}

// New creates a directory. fwd and split may be nil to disable the
// corresponding optimization.
func New(env Env, fwd *Forwarder, split *Splitter) *Directory {
	return &Directory{env: env, pages: map[uint64]*entry{}, fwd: fwd, split: split}
}

func (d *Directory) entryOf(page uint64) *entry {
	e := d.pages[page]
	if e == nil {
		e = &entry{owner: Master}
		d.pages[page] = e
	}
	return e
}

// SeedReplicated marks a page as read-shared by every node in all (used for
// text/rodata, which the loader replicates read-only everywhere).
func (d *Directory) SeedReplicated(page uint64, all NodeSet) {
	e := d.entryOf(page)
	e.owner = NoOwner
	e.sharers = all
}

// State exposes a page's owner and sharers (for tests and debugging).
func (d *Directory) State(page uint64) (owner int, sharers NodeSet, busy bool) {
	e := d.entryOf(page)
	return e.owner, e.sharers, e.busy
}

// OwnerOf reports which node's copy of page is current without creating a
// directory entry: NoOwner for the home copy of an unowned page, Master for
// an untouched page. This is the feedback scheduler's locality sensor — a
// thread repeatedly faulting on pages another node owns belongs there.
func (d *Directory) OwnerOf(page uint64) int {
	if e := d.pages[page]; e != nil {
		return e.owner
	}
	return Master
}

// ForceSplit begins a SplitHome transaction for page ahead of the reactive
// splitter's fault-count threshold (the feedback scheduler fires it off the
// heat map's false-sharing flag, before the fault storm). Returns false —
// and does nothing — when the directory has no splitter, the page sits in
// the shadow region, was already split, or a transaction is in flight (the
// caller retries on its next control period).
func (d *Directory) ForceSplit(page uint64) bool {
	if d.split == nil || !d.split.CanSplit(page) {
		return false
	}
	e := d.entryOf(page)
	if e.retired || e.busy {
		return false
	}
	d.beginSplit(page, e)
	return true
}

// OnRequest handles a fault-driven page request.
func (d *Directory) OnRequest(r Request) {
	if r.Write {
		d.Stats.Writes++
	} else {
		d.Stats.Reads++
	}
	e := d.entryOf(r.Page)
	if e.retired {
		// The page was split; the requester re-faults through the remap.
		d.Stats.Retries++
		d.env.SendRetry(r.Node, r.Page, r.TID)
		return
	}
	// False-sharing detection runs on writes even while busy.
	if d.split != nil && r.Write {
		if d.split.Record(r) && !e.busy {
			d.beginSplit(r.Page, e)
			if e.retired {
				// The split completed synchronously (no remote copies).
				d.Stats.Retries++
				d.env.SendRetry(r.Node, r.Page, r.TID)
				return
			}
		}
	}
	if e.busy {
		d.Stats.Queued++
		e.pending = append(e.pending, r)
		return
	}
	d.serve(e, r)
}

func (d *Directory) serve(e *entry, r Request) {
	if r.Write {
		d.serveWrite(e, r)
	} else {
		d.serveRead(e, r)
	}
}

func (d *Directory) serveWrite(e *entry, r Request) {
	if e.owner == r.Node {
		if r.Full {
			// The owner lost the grant's data (delta mismatch): re-ship the
			// home copy, which still holds the grant-time content — the
			// owner never applied anything on top of it.
			d.Stats.FullResends++
			d.env.SendContent(r.Node, r.Page, mem.PermReadWrite)
			return
		}
		// Benign race: the owner re-requested (e.g. read and write faults
		// raced). Its copy is the freshest — never overwrite it.
		d.env.SendReaffirm(r.Node, r.Page, mem.PermReadWrite)
		return
	}
	if e.owner > 0 {
		// A slave owns the only current copy: revoke and pull it home.
		e.busy = true
		e.grant = &r
		e.fetchFrom = e.owner
		d.Stats.Fetches++
		d.env.SendFetch(e.owner, r.Page, true)
		return
	}
	// Home copy is current (owner is Master or NoOwner with sharers).
	acks := 0
	e.sharers.ForEach(func(n int) {
		if n != r.Node && n != Master {
			d.Stats.Invalidates++
			e.invPending = e.invPending.Add(n)
			d.env.SendInvalidate(n, r.Page)
			acks++
		}
	})
	if acks > 0 {
		e.busy = true
		e.acksLeft = acks
		e.grant = &r
		return
	}
	d.grantWrite(e, r)
}

func (d *Directory) serveRead(e *entry, r Request) {
	if e.owner == r.Node && r.Node != Master {
		if r.Full {
			// Same as the write-side resend: the home copy is exactly the
			// content the owner was granted and failed to materialize.
			d.Stats.FullResends++
			d.env.SendContent(r.Node, r.Page, mem.PermReadWrite)
			return
		}
		// The requester owns the only fresh copy; keep it (M satisfies R).
		d.env.SendReaffirm(r.Node, r.Page, mem.PermReadWrite)
		return
	}
	if e.owner > 0 && e.owner != r.Node {
		// Downgrade the owner: it keeps a Shared copy and sends data home.
		e.busy = true
		e.grant = &r
		e.fetchFrom = e.owner
		d.Stats.Fetches++
		d.env.SendFetch(e.owner, r.Page, false)
		return
	}
	if e.sharers.Has(r.Node) && !r.Full {
		// The requester already has the content or a push is in flight to
		// it (sharers are only cleared by acked invalidations, which run
		// under busy). Re-shipping would add a full fault round trip for a
		// page that is about to arrive; the push/content wakes the waiter.
		d.Stats.Suppressed++
		return
	}
	if r.Full {
		d.Stats.FullResends++
	}
	d.grantRead(e, r)
}

func (d *Directory) grantWrite(e *entry, r Request) {
	e.owner = r.Node
	e.sharers = 0
	if r.Node == Master {
		d.env.HomeSetPerm(r.Page, mem.PermReadWrite)
	} else {
		// The home copy goes stale the moment the new owner writes.
		d.env.HomeSetPerm(r.Page, mem.PermNone)
	}
	d.env.SendContent(r.Node, r.Page, mem.PermReadWrite)
}

func (d *Directory) grantRead(e *entry, r Request) {
	if e.owner == Master {
		e.owner = NoOwner
	}
	if r.Node != Master {
		e.sharers = e.sharers.Add(r.Node)
	}
	// The home copy is readable by the master while unowned.
	d.env.HomeSetPerm(r.Page, mem.PermRead)
	d.env.SendContent(r.Node, r.Page, mem.PermRead)
	if d.fwd != nil && r.Node != Master && r.TID >= 0 {
		for _, p := range d.fwd.Record(r.TID, r.Page) {
			if d.split != nil && !d.split.Allocated(p) {
				// The predicted page number is an unallocated shadow slot: a
				// push would poison the entry a future split will inherit.
				continue
			}
			pe := d.entryOf(p)
			if pe.busy || pe.retired || pe.owner > 0 || pe.sharers.Has(r.Node) {
				continue
			}
			if pe.owner == Master {
				pe.owner = NoOwner
				d.env.HomeSetPerm(p, mem.PermRead)
			}
			pe.sharers = pe.sharers.Add(r.Node)
			d.Stats.Pushes++
			d.env.PushPage(r.Node, p)
		}
	}
}

// OnFetchReply finishes a fetch transaction: data is the owner's copy.
func (d *Directory) OnFetchReply(owner int, page uint64, data []byte, invalidated bool) error {
	e := d.entryOf(page)
	if !e.busy || e.fetchFrom == 0 {
		return fmt.Errorf("dsm: unexpected fetch reply for page %#x from node %d", page, owner)
	}
	if owner != e.fetchFrom {
		return fmt.Errorf("dsm: fetch reply for page %#x from node %d, but the fetch targets node %d",
			page, owner, e.fetchFrom)
	}
	e.fetchFrom = 0
	d.env.HomeWriteback(page, data)
	e.owner = NoOwner
	if !invalidated {
		e.sharers = e.sharers.Add(owner)
	}
	if e.split {
		d.finishSplit(page, e)
		return nil
	}
	grant := e.grant
	e.busy = false
	e.grant = nil
	if grant != nil {
		d.serve(e, *grant)
	}
	d.drain(page, e)
	return nil
}

// OnInvAck records one invalidation acknowledgement.
func (d *Directory) OnInvAck(node int, page uint64) error {
	e := d.entryOf(page)
	if !e.busy || e.acksLeft <= 0 || !e.invPending.Has(node) {
		return fmt.Errorf("dsm: unexpected inv-ack for page %#x from node %d", page, node)
	}
	e.invPending = e.invPending.Remove(node)
	e.sharers = e.sharers.Remove(node)
	e.acksLeft--
	if e.acksLeft > 0 {
		return nil
	}
	if e.split {
		d.finishSplit(page, e)
		return nil
	}
	grant := e.grant
	e.busy = false
	e.grant = nil
	if grant != nil {
		d.serve(e, *grant)
	}
	d.drain(page, e)
	return nil
}

// drain serves queued requests until the entry goes busy again.
func (d *Directory) drain(page uint64, e *entry) {
	for len(e.pending) > 0 && !e.busy {
		r := e.pending[0]
		e.pending = e.pending[1:]
		if e.retired {
			d.Stats.Retries++
			d.env.SendRetry(r.Node, r.Page, r.TID)
			continue
		}
		d.serve(e, r)
	}
}

// ---- Page splitting (§5.1) ----

// beginSplit starts a split transaction: the home copy must first be made
// current, revoking any owner and all sharers.
func (d *Directory) beginSplit(page uint64, e *entry) {
	e.busy = true
	e.split = true
	if e.owner > 0 {
		e.fetchFrom = e.owner
		d.Stats.Fetches++
		d.env.SendFetch(e.owner, page, true)
		return
	}
	acks := 0
	e.sharers.ForEach(func(n int) {
		if n != Master {
			d.Stats.Invalidates++
			e.invPending = e.invPending.Add(n)
			d.env.SendInvalidate(n, page)
			acks++
		}
	})
	if acks > 0 {
		e.acksLeft = acks
		return
	}
	d.finishSplit(page, e)
}

// finishSplit allocates shadow pages, redistributes the home copy,
// broadcasts the remap, and retries everyone who was waiting.
func (d *Directory) finishSplit(page uint64, e *entry) {
	shadows := d.split.AllocShadows(page)
	d.Stats.Splits++
	d.env.SplitHome(page, shadows)
	for _, sh := range shadows {
		se := d.entryOf(sh)
		se.owner = Master
	}
	d.env.BroadcastRemap(page, shadows)
	e.retired = true
	e.busy = false
	e.split = false
	e.owner = NoOwner
	e.sharers = 0
	if e.grant != nil {
		d.Stats.Retries++
		d.env.SendRetry(e.grant.Node, page, e.grant.TID)
		e.grant = nil
	}
	for _, r := range e.pending {
		d.Stats.Retries++
		d.env.SendRetry(r.Node, r.Page, r.TID)
	}
	e.pending = nil
}
