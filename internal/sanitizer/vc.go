// Package sanitizer is DQSan, DQEMU's translation-time sanitizer framework.
//
// The dynamic half is a ThreadSanitizer-style happens-before race detector
// for guest code: every guest thread carries a vector clock, every guest
// word carries shadow state recording who last touched it and when, and
// happens-before edges are drawn from the guest's synchronization actions —
// futex wake/wait, LL/SC and CAS success, AMO operations, fences, thread
// create/join/exit — including across nodes, by piggybacking encoded clocks
// and shadow pages on the coherence and syscall-delegation messages of
// internal/proto. Shadow state migrates, merges and splits along with the
// pages it describes, so a race between threads on different nodes is
// detected exactly like a local one.
//
// The static half (lint.go) is a set of translate-time IR lint passes over
// decoded blocks: unpaired LL/SC, statically misaligned atomics, redundant
// fences, and stores aimed at code pages, surfaced as structured Diags.
//
// Everything here is driven by the deterministic simulation, so reports are
// reproducible: the same image and config produce byte-identical summaries.
package sanitizer

import (
	"encoding/binary"
	"fmt"
	"math"
)

// VC is a vector clock indexed by guest thread id. Guest TIDs are small and
// dense (they start at 1 and increment), so a slice beats a map. Index 0 is
// unused. Epochs saturate at MaxUint32 instead of wrapping: a wrapped clock
// would compare as "before" everything and manufacture false orderings,
// while a saturated one only loses the ability to order *new* events after
// the saturation point (false negatives, never false positives).
type VC []uint32

// Get returns the epoch of tid (0 when the clock has no entry).
func (v VC) Get(tid int64) uint32 {
	if tid < 0 || int(tid) >= len(v) {
		return 0
	}
	return v[tid]
}

// grow extends v so index tid is addressable.
func (v *VC) grow(tid int64) {
	for int64(len(*v)) <= tid {
		*v = append(*v, 0)
	}
}

// Tick advances tid's own component, saturating at MaxUint32.
func (v *VC) Tick(tid int64) {
	if tid < 0 {
		return
	}
	v.grow(tid)
	if (*v)[tid] != math.MaxUint32 {
		(*v)[tid]++
	}
}

// Merge folds o into v component-wise (v = v ⊔ o).
func (v *VC) Merge(o VC) {
	if len(o) > len(*v) {
		v.grow(int64(len(o)) - 1)
	}
	for i, c := range o {
		if c > (*v)[i] {
			(*v)[i] = c
		}
	}
}

// Leq reports v ≤ o component-wise: everything v has seen, o has seen.
func (v VC) Leq(o VC) bool {
	for i, c := range v {
		if c > o.Get(int64(i)) {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (v VC) Clone() VC {
	return append(VC(nil), v...)
}

// Encode serialises the nonzero components as (tid, epoch) pairs in tid
// order. The encoding is deterministic — it feeds the bandwidth model.
func (v VC) Encode() []byte {
	n := 0
	for _, c := range v {
		if c != 0 {
			n++
		}
	}
	buf := make([]byte, 0, 4+8*n)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	for tid, c := range v {
		if c == 0 {
			continue
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(tid))
		buf = binary.LittleEndian.AppendUint32(buf, c)
	}
	return buf
}

// DecodeVC parses an Encode blob and returns the remaining bytes (clock
// encodings are embedded in larger shadow blobs).
func DecodeVC(b []byte) (VC, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("sanitizer: truncated clock")
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if n > 1<<16 || len(b) < 8*n {
		return nil, nil, fmt.Errorf("sanitizer: bad clock entry count %d", n)
	}
	var v VC
	for i := 0; i < n; i++ {
		tid := int64(binary.LittleEndian.Uint32(b))
		c := binary.LittleEndian.Uint32(b[4:])
		b = b[8:]
		v.grow(tid)
		if c > v[tid] {
			v[tid] = c
		}
	}
	return v, b, nil
}
