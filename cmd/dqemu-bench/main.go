// Command dqemu-bench regenerates the tables and figures of the DQEMU paper
// (ICPP '20) on the simulated cluster. Results are deterministic virtual
// time; see EXPERIMENTS.md for the mapping to the paper's numbers.
//
// Usage:
//
//	dqemu-bench [-exp fig5|fig6|table1|fig7|fig8|chaos|all] [-full] [-slaves N] [-q]
//	dqemu-bench -exp chaos -seed N            # reproduce one fault plan
//	dqemu-bench -exp chaos -runs 200          # longer battery
//	dqemu-bench -exp chaos -broken noretry    # prove the suite catches a broken transport
//	dqemu-bench -exp scenario -spec scenarios # run every checked-in scenario spec
//	dqemu-bench -exp scenario -spec scenarios -smoke -json out.json
//	dqemu-bench -exp adaptive -full -json BENCH_pr9.json  # feedback-scheduler gate
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"dqemu/internal/experiments"
	"dqemu/internal/scenario"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: fig5, fig6, table1, fig7, fig8, singlenode, sanitizer, wire, chaos, scenario, adaptive, or all")
	full := flag.Bool("full", false, "use inputs close to the paper's sizes (slow)")
	slaves := flag.Int("slaves", 6, "maximum number of slave nodes to sweep")
	quiet := flag.Bool("q", false, "suppress per-run progress")
	jsonOut := flag.String("json", "", "write singlenode/sanitizer/wire/adaptive results as JSON to this file")
	noSuper := flag.Bool("nosuperblock", false, "disable hot-trace superblocks (ablation)")
	noJC := flag.Bool("nojumpcache", false, "disable the indirect-branch target cache (ablation)")
	noT3 := flag.Bool("notier3", false, "disable closure compilation of hot superblocks (ablation)")
	noPeep := flag.Bool("nopeephole", false, "disable mined peephole rules (ablation)")
	verify := flag.Bool("verify", false, "singlenode/scenario: symbolically prove every superblock translation and structurally check every tier-3 compilation; any failure exits nonzero")
	ablate := flag.Bool("ablate", false, "singlenode: run the tier ablation matrix (full ladder, -nopeephole, -notier3) in one invocation")
	benchSel := flag.String("bench", "", "singlenode: run only this workload (pi, blackscholes, swaptions, x264)")
	chromeTrace := flag.String("chrome-trace", "", "write a Chrome trace_event timeline of the first singlenode run to this file")
	seed := flag.Int64("seed", 0, "chaos: run a single fault plan with this seed (0 = full battery)")
	runs := flag.Int("runs", 50, "chaos: battery size when -seed is 0")
	broken := flag.String("broken", "", "chaos: transport ablation to inject (noretry or nodedup)")
	specPath := flag.String("spec", "", "scenario: spec file or directory of *.json specs (required for -exp scenario)")
	smoke := flag.Bool("smoke", false, "scenario: divide scalable workload arguments down for a CI smoke run")
	cpuProf := flag.String("cpuprofile", "", "write a host CPU profile of the whole run to this file")
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dqemu-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dqemu-bench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	opts := experiments.Options{MaxSlaves: *slaves, ChromeTrace: *chromeTrace, Bench: *benchSel}
	if *full {
		opts.Scale = experiments.Full
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}

	selected := strings.Split(*exp, ",")
	want := func(name string) bool {
		for _, s := range selected {
			if s == name || s == "all" {
				return true
			}
		}
		return false
	}

	runOne := func(name string, f func() (printer, error)) {
		if !want(name) {
			return
		}
		start := time.Now()
		p, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dqemu-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		p.Print(os.Stdout)
		fmt.Fprintf(os.Stderr, "[%s took %.1fs host time]\n\n", name, time.Since(start).Seconds())
	}

	if want("chaos") {
		start := time.Now()
		co := experiments.ChaosOptions{Options: opts, Runs: *runs, Broken: *broken}
		if *seed != 0 {
			co.Seed, co.Runs = *seed, 1
		}
		c, err := experiments.RunChaos(co)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dqemu-bench: chaos: %v\n", err)
			os.Exit(1)
		}
		c.Print(os.Stdout)
		fmt.Fprintf(os.Stderr, "[chaos took %.1fs host time]\n\n", time.Since(start).Seconds())
		if c.Fails() > 0 {
			os.Exit(1)
		}
	}
	// scenario runs data-form specs (internal/scenario). Under -exp all it
	// only runs when -spec names a file or directory; -exp scenario without
	// -spec is an error.
	explicitScenario := false
	for _, s := range selected {
		if s == "scenario" {
			explicitScenario = true
		}
	}
	if explicitScenario && *specPath == "" {
		fmt.Fprintln(os.Stderr, "dqemu-bench: -exp scenario requires -spec <file|dir>")
		os.Exit(2)
	}
	if want("scenario") && *specPath != "" {
		start := time.Now()
		var specs []*scenario.Spec
		st, err := os.Stat(*specPath)
		if err == nil && st.IsDir() {
			specs, err = scenario.LoadDir(*specPath)
		} else if err == nil {
			var s *scenario.Spec
			s, err = scenario.Load(*specPath)
			specs = []*scenario.Spec{s}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "dqemu-bench: scenario: %v\n", err)
			os.Exit(1)
		}
		so := scenario.Options{Verify: *verify}
		if *smoke {
			so.Scale = scenario.Smoke
		}
		if !*quiet {
			so.Progress = os.Stderr
		}
		rep, err := scenario.RunAll(specs, so)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dqemu-bench: scenario: %v\n", err)
			os.Exit(1)
		}
		rep.Print(os.Stdout)
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dqemu-bench: %v\n", err)
				os.Exit(1)
			}
			if err := rep.WriteJSON(f); err != nil {
				fmt.Fprintf(os.Stderr, "dqemu-bench: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
		fmt.Fprintf(os.Stderr, "[scenario took %.1fs host time]\n\n", time.Since(start).Seconds())
		if rep.Fails() > 0 {
			os.Exit(1)
		}
	}

	runOne("fig5", func() (printer, error) { return experiments.RunFig5(opts) })
	runOne("fig6", func() (printer, error) { return experiments.RunFig6(opts) })
	runOne("table1", func() (printer, error) { return experiments.RunTable1(opts) })
	runOne("fig7", func() (printer, error) { return experiments.RunFig7(opts) })
	runOne("fig8", func() (printer, error) { return experiments.RunFig8(opts) })

	if want("sanitizer") {
		start := time.Now()
		sr, err := experiments.RunSanitizer(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dqemu-bench: sanitizer: %v\n", err)
			os.Exit(1)
		}
		sr.Print(os.Stdout)
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dqemu-bench: %v\n", err)
				os.Exit(1)
			}
			if err := sr.WriteJSON(f); err != nil {
				fmt.Fprintf(os.Stderr, "dqemu-bench: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
		fmt.Fprintf(os.Stderr, "[sanitizer took %.1fs host time]\n\n", time.Since(start).Seconds())
		if sr.Fails() > 0 {
			os.Exit(1)
		}
	}

	if want("adaptive") {
		start := time.Now()
		ar, err := experiments.RunAdaptive(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dqemu-bench: adaptive: %v\n", err)
			os.Exit(1)
		}
		ar.Print(os.Stdout)
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dqemu-bench: %v\n", err)
				os.Exit(1)
			}
			if err := ar.WriteJSON(f); err != nil {
				fmt.Fprintf(os.Stderr, "dqemu-bench: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
		fmt.Fprintf(os.Stderr, "[adaptive took %.1fs host time]\n\n", time.Since(start).Seconds())
		if ar.Fails() > 0 {
			os.Exit(1)
		}
	}

	if want("wire") {
		start := time.Now()
		wr, err := experiments.RunWire(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dqemu-bench: wire: %v\n", err)
			os.Exit(1)
		}
		wr.Print(os.Stdout)
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dqemu-bench: %v\n", err)
				os.Exit(1)
			}
			if err := wr.WriteJSON(f); err != nil {
				fmt.Fprintf(os.Stderr, "dqemu-bench: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
		fmt.Fprintf(os.Stderr, "[wire took %.1fs host time]\n\n", time.Since(start).Seconds())
		if wr.Fails() > 0 {
			os.Exit(1)
		}
	}

	if want("singlenode") {
		start := time.Now()
		var out interface {
			Print(w io.Writer)
			WriteJSON(w io.Writer) error
			VerifyFails() uint64
		}
		if *ablate {
			m, err := experiments.RunSingleNodeMatrix(opts, []experiments.TierConfig{
				{Verify: *verify}, // full ladder
				{NoPeephole: true, Verify: *verify},
				{NoTier3: true, Verify: *verify},
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "dqemu-bench: singlenode: %v\n", err)
				os.Exit(1)
			}
			out = m
		} else {
			sn, err := experiments.RunSingleNode(opts, experiments.TierConfig{
				NoSuperblock: *noSuper, NoJumpCache: *noJC,
				NoTier3: *noT3, NoPeephole: *noPeep, Verify: *verify,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "dqemu-bench: singlenode: %v\n", err)
				os.Exit(1)
			}
			out = sn
		}
		out.Print(os.Stdout)
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dqemu-bench: %v\n", err)
				os.Exit(1)
			}
			if err := out.WriteJSON(f); err != nil {
				fmt.Fprintf(os.Stderr, "dqemu-bench: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
		fmt.Fprintf(os.Stderr, "[singlenode took %.1fs host time]\n\n", time.Since(start).Seconds())
		if *verify && out.VerifyFails() > 0 {
			fmt.Fprintf(os.Stderr, "dqemu-bench: singlenode: %d translation-validation failures\n", out.VerifyFails())
			os.Exit(1)
		}
	}
}

type printer interface {
	Print(w io.Writer)
}
