package server

import (
	"errors"
	"fmt"
	"net"
	"time"

	"dqemu/internal/core"
	"dqemu/internal/image"
	"dqemu/internal/live"
	"dqemu/internal/metrics"
)

// RunSpec is a fully admitted job: the compiled guest image plus cluster
// shape. Admission does program building (and rejects bad programs with
// 400), so by the time a worker sees a RunSpec the only failures left are
// runtime ones.
type RunSpec struct {
	Image *image.Image
	Files map[string][]byte

	Slaves     int
	Cores      int
	Forwarding bool
	Splitting  bool
	HintSched  bool

	// Metrics asks for the observability snapshot (sim backend only).
	Metrics bool
}

// RunOutcome is what a backend reports for a finished guest.
type RunOutcome struct {
	ExitCode   int64
	Console    string
	GuestInsns uint64 // billed against the tenant's instruction budget
	TimeNs     int64  // guest virtual time (sim backend only)
	Metrics    *metrics.Snapshot
}

// Backend runs one admitted job to completion. Implementations must honor
// cancel (closed on API cancel, job timeout, and forced drain) by returning
// promptly with an error wrapping ErrJobCanceled, and must be safe for
// concurrent Run calls: the daemon runs many jobs at once.
type Backend interface {
	Name() string
	Run(cancel <-chan struct{}, spec RunSpec) (*RunOutcome, error)
}

// ErrJobCanceled is what backends report when cancel fired first.
var ErrJobCanceled = errors.New("job canceled")

// SimBackend executes jobs on the deterministic discrete-event simulation
// (internal/core). It is the default: no sockets, reproducible results,
// and the full metrics surface of the bench suite.
type SimBackend struct {
	// MaxVirtualNs caps guest virtual time per job (0 = core default, 1h).
	MaxVirtualNs int64
}

func (b *SimBackend) Name() string { return "sim" }

func (b *SimBackend) Run(cancel <-chan struct{}, spec RunSpec) (*RunOutcome, error) {
	cfg := core.DefaultConfig()
	cfg.Slaves = spec.Slaves
	if spec.Cores > 0 {
		cfg.Cores = spec.Cores
	}
	cfg.Forwarding = spec.Forwarding
	cfg.Splitting = spec.Splitting
	cfg.HintSched = spec.HintSched
	cfg.Metrics = spec.Metrics
	cfg.Cancel = cancel
	if b.MaxVirtualNs > 0 {
		cfg.MaxTimeNs = b.MaxVirtualNs
	}
	cl, err := core.NewCluster(spec.Image, cfg)
	if err != nil {
		return nil, err
	}
	for path, data := range spec.Files {
		cl.VFS().AddFile(path, data)
	}
	res, err := cl.Run()
	if err != nil {
		if errors.Is(err, core.ErrCanceled) {
			return nil, fmt.Errorf("sim backend: %w", ErrJobCanceled)
		}
		return nil, err
	}
	out := &RunOutcome{
		ExitCode: res.ExitCode,
		Console:  res.Console,
		TimeNs:   res.TimeNs,
		Metrics:  res.Metrics,
	}
	for _, n := range res.Nodes {
		out.GuestInsns += n.Engine.ExecInsns
	}
	return out, nil
}

// LiveBackend spawns a real-socket cluster per job: a master listening on
// loopback plus spec.Slaves slave loops, each node a genuinely concurrent
// event loop exchanging length-prefixed frames over TCP. It exists to keep
// the service honest against the hardened transport — the same BootError /
// backpressure / cancellation semantics a multi-machine deployment sees.
type LiveBackend struct {
	// Timeout bounds each live run (live.Config.Timeout; default 2 min).
	Timeout time.Duration
}

func (b *LiveBackend) Name() string { return "live" }

func (b *LiveBackend) Run(cancel <-chan struct{}, spec RunSpec) (*RunOutcome, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("live backend: %w", err)
	}
	defer ln.Close()
	addr := ln.Addr().String()
	slaveErr := make(chan error, spec.Slaves)
	for i := 0; i < spec.Slaves; i++ {
		go func() { slaveErr <- live.RunSlave(addr) }()
	}
	cfg := live.Config{
		Slaves:     spec.Slaves,
		Cores:      spec.Cores,
		Forwarding: spec.Forwarding,
		Splitting:  spec.Splitting,
		HintSched:  spec.HintSched,
		Timeout:    b.Timeout,
		Cancel:     cancel,
		Files:      spec.Files,
	}
	// The master's node loop honors cancel, but the boot (accept/handshake)
	// is bounded only by cfg.Timeout; closing the listener turns a cancel
	// during boot into an immediate BootError.
	masterDone := make(chan struct{})
	go func() {
		select {
		case <-cancel:
			ln.Close()
		case <-masterDone:
		}
	}()
	res, err := live.RunMaster(ln, spec.Image, cfg)
	close(masterDone)
	// Close the listener before draining the slaves: a boot failure leaves
	// un-accepted connections parked in the accept backlog, and their
	// handshake reads only fail once the listening socket is gone.
	ln.Close()
	for i := 0; i < spec.Slaves; i++ {
		serr := <-slaveErr
		if serr != nil && err == nil {
			err = fmt.Errorf("live backend: slave: %w", serr)
		}
	}
	if err != nil {
		if errors.Is(err, live.ErrCanceled) {
			return nil, fmt.Errorf("live backend: %w", ErrJobCanceled)
		}
		return nil, err
	}
	return &RunOutcome{
		ExitCode:   res.ExitCode,
		Console:    res.Console,
		GuestInsns: res.MasterInsns,
	}, nil
}
