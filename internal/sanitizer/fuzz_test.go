package sanitizer

import (
	"encoding/binary"
	"testing"

	"dqemu/internal/isa"
)

// FuzzLint feeds arbitrary bytes through the ISA decoder into the lint
// passes. The passes must never panic regardless of what a (possibly
// hostile or corrupted) guest image decodes to — they run inside the
// translate path of every node.
func FuzzLint(f *testing.F) {
	// Seed corpus: encodings of the patterns the passes care about.
	seed := func(insns []isa.Instruction) {
		var buf []byte
		for _, in := range insns {
			b, err := in.Encode(buf)
			if err != nil {
				f.Fatalf("seed encode: %v", err)
			}
			buf = b
		}
		f.Add(buf)
	}
	seed([]isa.Instruction{
		{Op: isa.OpLL, Rd: 5, Rs1: 6},
		{Op: isa.OpLL, Rd: 5, Rs1: 6},
		{Op: isa.OpSC, Rd: 7, Rs1: 6, Rs2: 5},
		{Op: isa.OpSC, Rd: 7, Rs1: 6, Rs2: 5},
	})
	seed([]isa.Instruction{
		{Op: isa.OpFENCE},
		{Op: isa.OpFENCE},
		{Op: isa.OpMOVID, Rd: 6, Imm: 0x2004},
		{Op: isa.OpAMOADD, Rd: 5, Rs1: 6, Rs2: 7},
	})
	seed([]isa.Instruction{
		{Op: isa.OpMOVID, Rd: 6, Imm: 0x10000},
		{Op: isa.OpSD, Rs1: 6, Rs2: 7, Imm: 8},
		{Op: isa.OpSVC},
	})
	// Raw garbage that does not decode cleanly.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x00, 0x01, 0x02, 0x03})
	f.Add(binary.LittleEndian.AppendUint32(nil, 0xdeadbeef))

	f.Fuzz(func(t *testing.T, data []byte) {
		var insns []isa.Instruction
		var pcs []uint64
		pc := uint64(0x1000)
		for len(data) >= 4 && len(insns) < 4096 {
			in, sz, err := isa.Decode(data)
			if err != nil {
				// Skip a word and keep going: a corrupt stream must not be
				// able to hide a panic behind an early decode error.
				data = data[4:]
				pc += 4
				continue
			}
			insns = append(insns, in)
			pcs = append(pcs, pc)
			data = data[sz:]
			pc += uint64(sz)
		}
		n := New(0, testPage)
		n.LintBlock(insns, pcs, func(a uint64) bool { return a>>12 == 0x10 })
	})
}
