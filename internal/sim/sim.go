// Package sim provides the deterministic discrete-event kernel that drives
// DQEMU's simulated cluster. Virtual time is int64 nanoseconds. Events fire
// in (time, insertion-order) order, so runs are reproducible — the property
// that lets the benchmark harness regenerate the paper's figures exactly.
package sim

import "container/heap"

// Kernel is a discrete-event scheduler. The zero value is not usable; call
// NewKernel.
type Kernel struct {
	now   int64
	seq   uint64
	queue eventHeap
	// Stopped reports whether Stop was called.
	stopped bool
}

type event struct {
	at  int64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewKernel returns a kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time in nanoseconds.
func (k *Kernel) Now() int64 { return k.now }

// Post schedules fn to run delay nanoseconds from now. Negative delays are
// clamped to zero (same-time events run in posting order).
func (k *Kernel) Post(delay int64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	k.PostAt(k.now+delay, fn)
}

// PostAt schedules fn at absolute time t (clamped to now).
func (k *Kernel) PostAt(t int64, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	heap.Push(&k.queue, event{at: t, seq: k.seq, fn: fn})
}

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return len(k.queue) }

// Step runs the next event. It returns false when the queue is empty or the
// kernel is stopped.
func (k *Kernel) Step() bool {
	if k.stopped || len(k.queue) == 0 {
		return false
	}
	e := heap.Pop(&k.queue).(event)
	k.now = e.at
	e.fn()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with time <= t, then advances the clock to t.
func (k *Kernel) RunUntil(t int64) {
	for !k.stopped && len(k.queue) > 0 && k.queue[0].at <= t {
		k.Step()
	}
	if !k.stopped && k.now < t {
		k.now = t
	}
}

// Stop halts Run at the next event boundary.
func (k *Kernel) Stop() { k.stopped = true }

// Stopped reports whether Stop was called.
func (k *Kernel) Stopped() bool { return k.stopped }
