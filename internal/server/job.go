package server

import (
	"fmt"
	"time"

	"dqemu/internal/metrics"
)

// State is a job's lifecycle position. The transitions are strictly
// forward: Queued → Running → one of the terminal states, or Queued →
// Canceled directly when a job is canceled before a worker picks it up.
// Submissions that fail admission (full queue, quota) never become jobs at
// all — the API rejects them with 429 so a misbehaving tenant cannot grow
// daemon state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded" // guest ran to exit_group (any exit code)
	StateFailed    State = "failed"    // backend error, panic, or bad program
	StateCanceled  State = "canceled"  // canceled via the API or by job timeout
)

// Terminal reports whether a job in this state will never change again.
func (s State) Terminal() bool {
	switch s {
	case StateSucceeded, StateFailed, StateCanceled:
		return true
	}
	return false
}

// JobRequest is the POST /v1/jobs body: exactly one of Source (mini-C),
// Asm (GA64 assembly) or Image (an encoded guest image) must be set.
type JobRequest struct {
	Name string `json:"name,omitempty"`

	Source string `json:"source,omitempty"`
	Asm    string `json:"asm,omitempty"`
	Image  []byte `json:"image,omitempty"` // base64 in JSON

	// Files pre-populates the guest VFS (values base64 in JSON).
	Files map[string][]byte `json:"files,omitempty"`

	// Backend selects "sim" (default: the deterministic simulation) or
	// "live" (a real-socket cluster spawned for this job).
	Backend string `json:"backend,omitempty"`

	Slaves     int  `json:"slaves,omitempty"`
	Cores      int  `json:"cores,omitempty"`
	Forwarding bool `json:"forwarding,omitempty"`
	Splitting  bool `json:"splitting,omitempty"`
	HintSched  bool `json:"hint_sched,omitempty"`

	// TimeoutMs bounds the job's host run time once started (0 = server
	// default). Expiry cancels the job.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`

	// Metrics asks the sim backend for the observability snapshot the bench
	// suite emits (fault-latency histograms, page heat, contention).
	Metrics bool `json:"metrics,omitempty"`
}

// JobStatus is the API view of a job.
type JobStatus struct {
	ID      string `json:"id"`
	Tenant  string `json:"tenant"`
	Name    string `json:"name,omitempty"`
	Backend string `json:"backend"`
	State   State  `json:"state"`

	QueuedAtNs   int64 `json:"queued_at_ns"`
	StartedAtNs  int64 `json:"started_at_ns,omitempty"`
	FinishedAtNs int64 `json:"finished_at_ns,omitempty"`

	ExitCode *int64 `json:"exit_code,omitempty"`
	Error    string `json:"error,omitempty"`

	// GuestInsns is what the job was billed against the tenant's
	// instruction budget; TimeNs is guest virtual time (sim backend only).
	GuestInsns uint64 `json:"guest_insns,omitempty"`
	TimeNs     int64  `json:"time_ns,omitempty"`
	WallNs     int64  `json:"wall_ns,omitempty"`
}

// JobResult is the GET /v1/jobs/{id}/result body: the status plus the
// payloads too heavy for list responses.
type JobResult struct {
	JobStatus
	Console string            `json:"console,omitempty"`
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

// job is the server-side record. The Server's mutex guards every field
// after construction; the done channel closes exactly once, on the
// transition to a terminal state.
type job struct {
	id      string
	tenant  string
	name    string
	backend string
	spec    RunSpec
	timeout time.Duration

	state    State
	queuedAt time.Time
	started  time.Time
	finished time.Time

	res *RunOutcome
	err error

	cancel chan struct{} // closed by API cancel / drain / timeout
	done   chan struct{} // closed on terminal transition
}

func (j *job) status() JobStatus {
	st := JobStatus{
		ID: j.id, Tenant: j.tenant, Name: j.name, Backend: j.backend,
		State:      j.state,
		QueuedAtNs: j.queuedAt.UnixNano(),
	}
	if !j.started.IsZero() {
		st.StartedAtNs = j.started.UnixNano()
	}
	if !j.finished.IsZero() {
		st.FinishedAtNs = j.finished.UnixNano()
		if !j.started.IsZero() {
			st.WallNs = j.finished.Sub(j.started).Nanoseconds()
		}
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.res != nil {
		code := j.res.ExitCode
		st.ExitCode = &code
		st.GuestInsns = j.res.GuestInsns
		st.TimeNs = j.res.TimeNs
	}
	return st
}

func (j *job) result() JobResult {
	r := JobResult{JobStatus: j.status()}
	if j.res != nil {
		r.Console = j.res.Console
		r.Metrics = j.res.Metrics
	}
	return r
}

// APIError is the JSON error body every non-2xx response carries.
type APIError struct {
	Status  int    `json:"status"`
	Message string `json:"message"`
}

func (e *APIError) Error() string { return fmt.Sprintf("%d: %s", e.Status, e.Message) }
