package mem

import (
	"testing"
	"testing/quick"
)

func TestLoadStoreBasic(t *testing.T) {
	s := NewSpace(0)
	s.SetPerm(1, PermReadWrite) // page 1 = [0x1000,0x2000)
	for _, size := range []int{1, 2, 4, 8} {
		addr := uint64(0x1000 + 8*size)
		val := uint64(0x1122334455667788)
		if f := s.Store(addr, val, size); f != nil {
			t.Fatalf("store size %d: %v", size, f)
		}
		got, f := s.Load(addr, size)
		if f != nil {
			t.Fatalf("load size %d: %v", size, f)
		}
		want := val
		if size < 8 {
			want = val & (1<<(8*size) - 1)
		}
		if got != want {
			t.Errorf("size %d: got %#x want %#x", size, got, want)
		}
	}
}

func TestPermissionFaults(t *testing.T) {
	s := NewSpace(0)
	// Absent page: read fault.
	if _, f := s.Load(0x5000, 8); f == nil || f.Write {
		t.Errorf("expected read fault, got %v", f)
	}
	// Read-only page: loads fine, stores fault.
	s.InstallPage(5, []byte{42}, PermRead)
	if v, f := s.Load(0x5000, 1); f != nil || v != 42 {
		t.Errorf("load RO page: %v %v", v, f)
	}
	if f := s.Store(0x5000, 1, 1); f == nil || !f.Write || f.Page != 5 {
		t.Errorf("expected write fault, got %v", f)
	}
	// Upgrade to RW.
	s.SetPerm(5, PermReadWrite)
	if f := s.Store(0x5000, 7, 1); f != nil {
		t.Errorf("store after upgrade: %v", f)
	}
	if s.Faults != 2 {
		t.Errorf("fault count = %d, want 2", s.Faults)
	}
}

func TestFaultDoesNotPartiallyWrite(t *testing.T) {
	s := NewSpace(0)
	s.SetPerm(1, PermReadWrite)
	s.InstallPage(2, nil, PermRead) // next page read-only
	// 8-byte store spanning pages 1 and 2 must fault and leave page 1 alone.
	addr := uint64(0x2000 - 4)
	if f := s.Store(addr, 0xffffffffffffffff, 8); f == nil {
		t.Fatal("expected fault")
	}
	v, f := s.Load(addr, 4)
	if f != nil || v != 0 {
		t.Errorf("partial write leaked: %#x %v", v, f)
	}
}

func TestCrossPageAccess(t *testing.T) {
	s := NewSpace(0)
	s.SetPerm(1, PermReadWrite)
	s.SetPerm(2, PermReadWrite)
	addr := uint64(0x2000 - 3)
	want := uint64(0x0102030405060708)
	if f := s.Store(addr, want, 8); f != nil {
		t.Fatal(f)
	}
	got, f := s.Load(addr, 8)
	if f != nil || got != want {
		t.Errorf("cross-page: got %#x, %v", got, f)
	}
}

func TestInstallAndExtract(t *testing.T) {
	s := NewSpace(0)
	content := make([]byte, 4096)
	for i := range content {
		content[i] = byte(i)
	}
	s.InstallPage(3, content, PermRead)
	data := s.PageData(3)
	if data == nil || data[255] != 255 {
		t.Fatal("page data mismatch")
	}
	// Install copies.
	content[0] = 99
	if data[0] == 99 {
		t.Error("InstallPage aliased caller's buffer")
	}
	s.DropPage(3)
	if s.PageData(3) != nil || s.PermOf(3) != PermNone {
		t.Error("page not dropped")
	}
}

func TestTLBInvalidation(t *testing.T) {
	s := NewSpace(0)
	s.SetPerm(1, PermReadWrite)
	if f := s.Store(0x1000, 1, 1); f != nil {
		t.Fatal(f)
	}
	// Downgrade: the cached TLB entry must not satisfy the next store.
	s.SetPerm(1, PermRead)
	if f := s.Store(0x1000, 2, 1); f == nil {
		t.Fatal("TLB served stale writable entry after downgrade")
	}
	// Drop entirely: loads must fault too.
	s.DropPage(1)
	if _, f := s.Load(0x1000, 1); f == nil {
		t.Fatal("TLB served stale entry after drop")
	}
}

func TestRemapSplitsPage(t *testing.T) {
	s := NewSpace(0)
	// Fill original page 1 with a pattern while unsplit.
	s.SetPerm(1, PermReadWrite)
	for i := 0; i < 4096; i++ {
		s.Store(0x1000+uint64(i), uint64(i&0xff), 1)
	}
	orig := make([]byte, 4096)
	copy(orig, s.PageData(1))

	// Split into 4 shadow pages at 0x60000000.
	shBase := uint64(0x60000000) >> 12
	shadows := []uint64{shBase, shBase + 1, shBase + 2, shBase + 3}
	if err := s.AddRemap(1, shadows); err != nil {
		t.Fatal(err)
	}
	// Master would install each quarter at the same offset; emulate that.
	for part := 0; part < 4; part++ {
		data := make([]byte, 4096)
		copy(data[part*1024:(part+1)*1024], orig[part*1024:(part+1)*1024])
		s.InstallPage(shadows[part], data, PermReadWrite)
	}
	// All original addresses must still read the same bytes.
	for i := 0; i < 4096; i += 37 {
		v, f := s.Load(0x1000+uint64(i), 1)
		if f != nil || v != uint64(i&0xff) {
			t.Fatalf("addr %#x after split: %v %v", 0x1000+i, v, f)
		}
	}
	// Writes go to shadow pages.
	if f := s.Store(0x1000+2048, 0xAB, 1); f != nil {
		t.Fatal(f)
	}
	if s.PageData(shadows[2])[2048] != 0xAB {
		t.Error("write did not land in shadow page")
	}
	// Translate maps into each quarter.
	if got := s.Translate(0x1000 + 1024); got != shadows[1]<<12|1024 {
		t.Errorf("Translate = %#x", got)
	}
	// The faulting page reported for an absent shadow is the shadow page.
	s.DropPage(shadows[3])
	if _, f := s.Load(0x1000+3072, 1); f == nil || f.Page != shadows[3] {
		t.Errorf("fault = %+v", f)
	}
}

func TestRemapCrossPartAccess(t *testing.T) {
	s := NewSpace(0)
	s.SetPerm(1, PermReadWrite)
	s.Store(0x1000+1022, 0x1122334455667788, 8) // spans parts 0 and 1
	shBase := uint64(0x60000000) >> 12
	shadows := []uint64{shBase, shBase + 1, shBase + 2, shBase + 3}
	orig := make([]byte, 4096)
	// Page content was dropped by AddRemap; repopulate shadows with the data
	// that was there.
	copy(orig, s.PageData(1))
	s.AddRemap(1, shadows)
	for part := 0; part < 4; part++ {
		data := make([]byte, 4096)
		copy(data[part*1024:(part+1)*1024], orig[part*1024:(part+1)*1024])
		s.InstallPage(shadows[part], data, PermReadWrite)
	}
	v, f := s.Load(0x1000+1022, 8)
	if f != nil || v != 0x1122334455667788 {
		t.Errorf("cross-part load: %#x %v", v, f)
	}
	if f := s.Store(0x1000+1022, 0x8877665544332211, 8); f != nil {
		t.Fatal(f)
	}
	v, _ = s.Load(0x1000+1022, 8)
	if v != 0x8877665544332211 {
		t.Errorf("cross-part store: %#x", v)
	}
}

func TestRemapErrors(t *testing.T) {
	s := NewSpace(0)
	if err := s.AddRemap(1, []uint64{2, 3, 4}); err == nil {
		t.Error("non-power-of-two split accepted")
	}
	if err := s.AddRemap(1, []uint64{2}); err == nil {
		t.Error("split factor 1 accepted")
	}
	if err := s.AddRemap(1, []uint64{10, 11}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRemap(1, []uint64{12, 13}); err == nil {
		t.Error("double split accepted")
	}
	if err := s.AddRemap(5, []uint64{10, 20}); err == nil {
		t.Error("shadow of split page accepted as shadow again")
	}
}

func TestReadWriteBytes(t *testing.T) {
	s := NewSpace(0)
	msg := []byte("hello guest world")
	if err := s.WriteBytes(0x1ffa, msg); err != nil { // crosses page boundary
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if err := s.ReadBytes(0x1ffa, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(msg) {
		t.Errorf("roundtrip = %q", buf)
	}
	if err := s.ReadBytes(0x900000, buf); err == nil {
		t.Error("read of absent page should fail")
	}
}

func TestReadCString(t *testing.T) {
	s := NewSpace(0)
	s.WriteBytes(0x1000, []byte("hi\x00rest"))
	got, err := s.ReadCString(0x1000, 100)
	if err != nil || got != "hi" {
		t.Errorf("ReadCString = %q, %v", got, err)
	}
	if _, err := s.ReadCString(0x1000, 1); err == nil {
		t.Error("unterminated string accepted")
	}
}

func TestLoadStoreF64(t *testing.T) {
	s := NewSpace(0)
	s.SetPerm(1, PermReadWrite)
	if f := s.StoreF64(0x1008, 3.25); f != nil {
		t.Fatal(f)
	}
	v, f := s.LoadF64(0x1008)
	if f != nil || v != 3.25 {
		t.Errorf("f64 roundtrip: %v %v", v, f)
	}
}

func TestPageSizes(t *testing.T) {
	for _, ps := range []int{64, 1024, 4096, 16384} {
		s := NewSpace(ps)
		if s.PageSize() != ps {
			t.Errorf("PageSize = %d", s.PageSize())
		}
		if s.PageOf(uint64(ps)) != 1 || s.PageAddr(1) != uint64(ps) {
			t.Errorf("ps %d: page math wrong", ps)
		}
	}
	for _, bad := range []int{-1, 5, 48, 3000} {
		func() {
			defer func() { recover() }()
			NewSpace(bad)
			t.Errorf("page size %d accepted", bad)
		}()
	}
}

// Property: for random aligned addr/size/value, store-then-load returns the
// stored value masked to the size.
func TestQuickStoreLoad(t *testing.T) {
	s := NewSpace(0)
	for p := uint64(0); p < 16; p++ {
		s.SetPerm(p, PermReadWrite)
	}
	f := func(addrRaw uint16, sizeSel uint8, val uint64) bool {
		size := 1 << (sizeSel % 4)
		addr := uint64(addrRaw) &^ uint64(size-1)
		if fl := s.Store(addr, val, size); fl != nil {
			return false
		}
		got, fl := s.Load(addr, size)
		if fl != nil {
			return false
		}
		want := val
		if size < 8 {
			want &= 1<<(8*size) - 1
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
