package proto

// ReplayCache deduplicates delegated syscall requests on the master. A slave
// that retries a KSyscallReq after a timeout may deliver the same request
// twice; executing a non-idempotent syscall (futex wake, thread create,
// write) twice would corrupt guest state. The cache keys requests by
// (tid, seq): a duplicate of a completed request replays the saved reply, a
// duplicate of an in-flight request (e.g. a futex wait whose reply is
// parked) is dropped — the eventual reply answers both.
type ReplayCache struct {
	byTID map[int64]*replayEntry
	// Replayed counts duplicate requests answered from the cache.
	Replayed uint64
	// Suppressed counts duplicates of still-in-flight requests dropped.
	Suppressed uint64
}

type replayEntry struct {
	seq  uint64 // highest request seq seen for this tid
	done bool   // reply for seq already sent
	ret  uint64 // saved return value when done
}

// NewReplayCache returns an empty cache.
func NewReplayCache() *ReplayCache {
	return &ReplayCache{byTID: map[int64]*replayEntry{}}
}

// Outcome classifies an incoming request.
type Outcome int

const (
	// Execute: a fresh request; the caller must run it and call Complete.
	Execute Outcome = iota
	// Replay: a duplicate of a completed request; Ret holds the saved reply.
	Replay
	// Suppress: a duplicate of an in-flight request; drop it.
	Suppress
)

// Admit classifies a request with the given per-thread sequence number.
// Seq 0 is treated as unsequenced and always executes (legacy callers).
func (c *ReplayCache) Admit(tid int64, seq uint64) (Outcome, uint64) {
	if seq == 0 {
		return Execute, 0
	}
	e := c.byTID[tid]
	if e == nil {
		e = &replayEntry{}
		c.byTID[tid] = e
	}
	if seq > e.seq {
		e.seq, e.done, e.ret = seq, false, 0
		return Execute, 0
	}
	if seq == e.seq {
		if e.done {
			c.Replayed++
			return Replay, e.ret
		}
		c.Suppressed++
		return Suppress, 0
	}
	// Older than the newest request from this thread: the slave has moved
	// on, its reply can no longer be wanted.
	c.Suppressed++
	return Suppress, 0
}

// Complete records the reply for the thread's current request so later
// duplicates replay it instead of re-executing.
func (c *ReplayCache) Complete(tid int64, seq uint64, ret uint64) {
	if seq == 0 {
		return
	}
	e := c.byTID[tid]
	if e == nil || e.seq != seq {
		return
	}
	e.done, e.ret = true, ret
}

// Forget drops a thread's state (thread exit).
func (c *ReplayCache) Forget(tid int64) { delete(c.byTID, tid) }
