package sanitizer

import (
	"reflect"
	"testing"
)

const testPage = 4096

func TestShadowEncodeDecodeRoundTrip(t *testing.T) {
	p := newPageShadow(testPage)
	p.cells[3].write = access{tid: 2, clk: 9, off: 0, size: 8, pc: 0x1000}
	p.cells[3].recordRead(access{tid: 3, clk: 4, off: 2, size: 2, pc: 0x1010})
	p.cells[3].recordRead(access{tid: 4, clk: 1, off: 0, size: 1, pc: 0x1020})
	p.cells[17].atomic = true
	sc := p.syncClock(17*8, true)
	sc.Tick(2)
	sc.Tick(5)

	got, err := decodePageShadow(p.encode(), testPage)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.cells[3].write != p.cells[3].write {
		t.Errorf("write cell: %+v != %+v", got.cells[3].write, p.cells[3].write)
	}
	if got.cells[3].reads[0] != p.cells[3].reads[0] || got.cells[3].reads[1] != p.cells[3].reads[1] {
		t.Errorf("read slots differ")
	}
	if !got.cells[17].atomic {
		t.Error("atomic flag lost")
	}
	gsc := got.syncClock(17*8, false)
	if gsc == nil || !reflect.DeepEqual(*gsc, *sc) {
		t.Errorf("sync clock: %v != %v", gsc, sc)
	}
	// Deterministic: encoding twice gives identical bytes.
	if !reflect.DeepEqual(p.encode(), p.encode()) {
		t.Error("encode not deterministic")
	}
}

func TestShadowDecodeRejectsTruncation(t *testing.T) {
	p := newPageShadow(testPage)
	p.cells[1].write = access{tid: 1, clk: 1, size: 8}
	p.syncClock(64, true).Tick(1)
	blob := p.encode()
	for cut := 0; cut < len(blob); cut++ {
		if _, err := decodePageShadow(blob[:cut], testPage); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestShadowMerge(t *testing.T) {
	home := newPageShadow(testPage)
	home.cells[0].write = access{tid: 1, clk: 1, size: 8, pc: 0xa}
	home.cells[0].recordRead(access{tid: 2, clk: 3, size: 8, pc: 0xb})
	home.syncClock(0, true).Tick(1)

	in := newPageShadow(testPage)
	in.cells[0].write = access{tid: 3, clk: 7, size: 8, pc: 0xc} // owner's newer write
	in.cells[0].recordRead(access{tid: 4, clk: 2, size: 8, pc: 0xd})
	in.cells[1].atomic = true
	in.syncClock(0, true).Tick(3)

	home.merge(in)
	if home.cells[0].write.tid != 3 {
		t.Errorf("incoming write must replace home write: %+v", home.cells[0].write)
	}
	// Reads from both sides survive.
	tids := map[int64]bool{}
	for _, r := range home.cells[0].reads {
		if r.tid != 0 {
			tids[r.tid] = true
		}
	}
	if !tids[2] || !tids[4] {
		t.Errorf("read union lost a record: %v", tids)
	}
	if !home.cells[1].atomic {
		t.Error("atomic flag not merged")
	}
	s := home.syncClock(0, false)
	if s.Get(1) != 1 || s.Get(3) != 1 {
		t.Errorf("sync clocks not joined: %v", *s)
	}
}

func TestShadowSplitPreservesOffsets(t *testing.T) {
	p := newPageShadow(testPage)
	// One record in each quarter of the page.
	idxs := []int{0, 200, 300, 500}
	for _, i := range idxs {
		p.cells[i].write = access{tid: 1, clk: 1, size: 8, pc: uint64(i)}
	}
	p.syncClock(200*8, true).Tick(2)

	parts := p.split(4, testPage)
	if len(parts) != 4 {
		t.Fatalf("parts = %d", len(parts))
	}
	// dsm.SplitHome keeps bytes at their original in-page offset: part i owns
	// byte range [i*1024, (i+1)*1024), i.e. cells [i*128, (i+1)*128).
	for pi, want := range idxs {
		for qi, q := range parts {
			has := !q.cells[want].empty()
			if (qi == pi) != has {
				t.Errorf("cell %d: part %d has=%v", want, qi, has)
			}
		}
	}
	if parts[1].syncClock(200*8, false) == nil {
		t.Error("sync clock not routed to owning part")
	}
	if parts[0].syncClock(200*8, false) != nil {
		t.Error("sync clock duplicated into wrong part")
	}
}

// TestNodeShadowTransfer drives the Node-level encode/merge/split API the
// way the DSM does: record on one node, ship to home, split, and check the
// record lands on the right shadow page.
func TestNodeShadowTransfer(t *testing.T) {
	owner := New(1, testPage)
	owner.OnStore(2, 0x3000+1024+16, 8, 0x99) // page 3, second quarter

	home := New(0, testPage)
	home.MergePage(3, owner.EncodePage(3))
	owner.DropPage(3)

	// Migrate the record across a split: shadows 100..103.
	home.SplitPage(3, []uint64{100, 101, 102, 103})
	if home.EncodePage(3) != nil {
		t.Error("original page shadow must be dropped after split")
	}
	blob := home.EncodePage(101)
	if blob == nil {
		t.Fatal("split lost the shadow record")
	}
	for _, empty := range []uint64{100, 102, 103} {
		if home.EncodePage(empty) != nil {
			t.Errorf("page %d should have no shadow", empty)
		}
	}

	// A second node receiving the shadow must detect the cross-node race.
	other := New(2, testPage)
	other.MergePage(101, blob)
	other.OnStore(5, 101*testPage+1024+16, 8, 0x77)
	races := other.Races()
	if len(races) != 1 {
		t.Fatalf("races = %+v", races)
	}
	if races[0].Kind != "write-write" || races[0].PrevTID != 2 || races[0].TID != 5 {
		t.Errorf("race = %+v", races[0])
	}
}

// TestDetectorHappensBefore checks the core FastTrack property on one node:
// unordered accesses race, sync-ordered ones do not.
func TestDetectorHappensBefore(t *testing.T) {
	n := New(0, testPage)
	// t1 writes, t2 writes the same word with no edge: race.
	n.OnStore(1, 0x100, 8, 0xa)
	n.OnStore(2, 0x100, 8, 0xb)
	if len(n.Races()) != 1 {
		t.Fatalf("want 1 race, got %+v", n.Races())
	}

	// Lock-ordered accesses: t1 writes then releases (CAS success = release
	// on the lock word); t2 acquires the lock word, then writes. No new race.
	n2 := New(0, testPage)
	n2.OnStore(1, 0x200, 8, 0xa)
	n2.OnAtomic(1, 0x300, 8, 0xc, true) // t1 unlock: release
	n2.OnAtomic(2, 0x300, 8, 0xd, true) // t2 lock: acquires t1's release
	n2.OnStore(2, 0x200, 8, 0xb)
	if len(n2.Races()) != 0 {
		t.Errorf("sync-ordered accesses reported: %+v", n2.Races())
	}

	// Different bytes of one word never conflict.
	n3 := New(0, testPage)
	n3.OnStore(1, 0x400, 2, 0xa)
	n3.OnStore(2, 0x404, 2, 0xb)
	if len(n3.Races()) != 0 {
		t.Errorf("disjoint sub-word accesses reported: %+v", n3.Races())
	}

	// Plain accesses to an atomic-marked word are exempt (TTAS idiom).
	n4 := New(0, testPage)
	n4.OnAtomic(1, 0x500, 8, 0xa, true)
	n4.OnLoad(2, 0x500, 8, 0xb)  // spin read
	n4.OnStore(1, 0x500, 8, 0xc) // runtime-internal plain reset
	if len(n4.Races()) != 0 {
		t.Errorf("atomic-word plain accesses reported: %+v", n4.Races())
	}
}

// TestDetectorThreadLifecycle checks create and join edges via the
// clock-blob plumbing used by the syscall path.
func TestDetectorThreadLifecycle(t *testing.T) {
	n := New(0, testPage)
	// Creator writes, then creates a child carrying its clock.
	n.OnStore(1, 0x800, 8, 0xa)
	blob := n.SyscallClock(1)
	n.InstallThread(2, blob)
	n.OnStore(2, 0x800, 8, 0xb) // ordered by the create edge
	if len(n.Races()) != 0 {
		t.Fatalf("create edge missing: %+v", n.Races())
	}

	// Child writes, exits; parent joins and then writes: ordered.
	n.OnStore(2, 0x900, 8, 0xc)
	n.RecordExit(2, n.SyscallClock(2))
	n.Acquire(1, n.JoinClock(2))
	n.OnStore(1, 0x900, 8, 0xd)
	if len(n.Races()) != 0 {
		t.Errorf("join edge missing: %+v", n.Races())
	}
}

// TestDetectorFutexEdge mirrors the master-side futex plumbing: a waker's
// released clock reaches the waiter through FutexWake + FutexWaitClock.
func TestDetectorFutexEdge(t *testing.T) {
	m := New(0, testPage)
	w := New(1, testPage)
	// Waker (tid 1, node 1) writes, then its wake delegation carries its clock.
	w.OnStore(1, 0x700, 8, 0xa)
	m.FutexWake(0xf00, w.SyscallClock(1))
	// Waiter (tid 2, also hosted on node 1) is released with the futex clock.
	w.Acquire(2, m.FutexWaitClock(0xf00))
	w.OnStore(2, 0x700, 8, 0xb)
	if len(w.Races()) != 0 {
		t.Errorf("futex edge missing: %+v", w.Races())
	}
	if m.FutexWaitClock(0xdead) != nil {
		t.Error("unknown futex word must yield no clock")
	}
}
