package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"dqemu/internal/image"
	"dqemu/internal/metrics"
	"dqemu/internal/trace"
	"dqemu/internal/workloads"
)

// SingleNode measures raw translator throughput on one node (no DSM
// traffic): guest instructions retired per second of *host* time. This is
// the honest figure of merit for the tiered-translation work — virtual time
// is charged per guest instruction and so barely moves, but superblocks cut
// the host-side dispatch and decode work per instruction.
type SingleNode struct {
	// Config echoes the ablation under test so JSON files are
	// self-describing.
	NoSuperblock bool `json:"no_superblock"`
	NoJumpCache  bool `json:"no_jump_cache"`
	NoTier3      bool `json:"no_tier3"`
	NoPeephole   bool `json:"no_peephole"`
	Verify       bool `json:"verify,omitempty"`

	Rows []SingleNodeRow `json:"rows"`
}

// TierConfig selects which rungs of the translation ladder a suite run
// ablates off. The zero value is the full ladder (interpreter, chained
// blocks, superblocks, tier-3 closures, peephole rules).
type TierConfig struct {
	NoSuperblock bool
	NoJumpCache  bool
	NoTier3      bool
	NoPeephole   bool
	// Verify turns on translate-time translation validation (symbolic
	// superblock proofs + tier-3 structural checks); see core.Config.Verify.
	Verify bool
}

// SingleNodeRow is one benchmark's measurement.
type SingleNodeRow struct {
	Bench       string  `json:"bench"`
	GuestInsns  uint64  `json:"guest_insns"`
	HostNs      int64   `json:"host_ns"`
	InsnsPerSec float64 `json:"insns_per_sec"`

	// Per-phase virtual-time breakdown.
	TranslateNs int64 `json:"translate_ns"`
	ExecNs      int64 `json:"exec_ns"`
	FaultNs     int64 `json:"fault_ns"`
	SyscallNs   int64 `json:"syscall_ns"`

	// Tier counters (zero when the tier is ablated off).
	Superblocks      uint64 `json:"superblocks"`
	SuperblockInsns  uint64 `json:"superblock_insns"`
	FusedUops        uint64 `json:"fused_uops"`
	JumpCacheHits    uint64 `json:"jump_cache_hits"`
	Tier3Superblocks uint64 `json:"tier3_superblocks"`
	Tier3Insns       uint64 `json:"tier3_insns"`
	Tier3Demotions   uint64 `json:"tier3_demotions"`
	PeepApplied      uint64 `json:"peep_applied"`

	// Translation-validation counters (zero unless Verify).
	VerifiedSuperblocks uint64 `json:"verified_superblocks,omitempty"`
	VerifyDemotions     uint64 `json:"verify_demotions,omitempty"`
	VerifiedTier3       uint64 `json:"verified_tier3,omitempty"`
	Tier3CheckFailures  uint64 `json:"tier3_check_failures,omitempty"`

	// Metrics is the run's full observability snapshot (fault-latency
	// histograms, page heat top-N, lock contention, per-thread breakdown).
	Metrics *metrics.Snapshot `json:"metrics"`
}

// singleNodeBench is one workload in the fixed suite.
type singleNodeBench struct {
	name  string
	build func(s Scale) (*image.Image, error)
}

func singleNodeSuite() []singleNodeBench {
	return []singleNodeBench{
		{"pi", func(s Scale) (*image.Image, error) {
			threads, repeats, terms := 8, 400, 100
			switch s {
			case Full:
				repeats = 1600
			case Smoke:
				threads, repeats, terms = 4, 50, 50
			}
			return workloads.Pi(threads, repeats, terms)
		}},
		{"blackscholes", func(s Scale) (*image.Image, error) {
			threads, options, rounds := 8, 1024, 10
			switch s {
			case Full:
				options, rounds = 4096, 16
			case Smoke:
				threads, options, rounds = 4, 64, 2
			}
			return workloads.Blackscholes(threads, options, rounds, 1)
		}},
		{"swaptions", func(s Scale) (*image.Image, error) {
			threads, swaptions, trials := 8, 24, 120
			switch s {
			case Full:
				swaptions, trials = 48, 300
			case Smoke:
				threads, swaptions, trials = 4, 4, 20
			}
			return workloads.Swaptions(threads, swaptions, trials, 1)
		}},
		{"x264", func(s Scale) (*image.Image, error) {
			threads, group, frames := 8, 4, 24
			switch s {
			case Full:
				frames = 96
			case Smoke:
				threads, group, frames = 4, 2, 8
			}
			return workloads.X264(threads, group, frames)
		}},
	}
}

// RunSingleNode runs the single-node throughput suite with the given tier
// ablation. NoSuperblock && NoJumpCache is the seed baseline (plain
// chained blocks). Options.Bench, when non-empty, restricts the suite to
// that one workload.
func RunSingleNode(o Options, tc TierConfig) (*SingleNode, error) {
	o.normalize()
	out := &SingleNode{NoSuperblock: tc.NoSuperblock, NoJumpCache: tc.NoJumpCache,
		NoTier3: tc.NoTier3, NoPeephole: tc.NoPeephole, Verify: tc.Verify}
	for _, b := range singleNodeSuite() {
		if o.Bench != "" && b.name != o.Bench {
			continue
		}
		im, err := b.build(o.Scale)
		if err != nil {
			return nil, fmt.Errorf("singlenode %s: %w", b.name, err)
		}
		cfg := baseConfig(0)
		cfg.NoSuperblock = tc.NoSuperblock
		cfg.NoJumpCache = tc.NoJumpCache
		cfg.NoTier3 = tc.NoTier3
		cfg.NoPeephole = tc.NoPeephole
		cfg.Verify = tc.Verify
		cfg.Metrics = true
		var tr *trace.Tracer
		if o.ChromeTrace != "" && len(out.Rows) == 0 {
			// Trace the suite's first bench for the Chrome timeline.
			tr = trace.New(0, nil)
			cfg.Tracer = tr
		}

		start := time.Now()
		res, err := run(im, cfg)
		hostNs := time.Since(start).Nanoseconds()
		if err != nil {
			return nil, fmt.Errorf("singlenode %s: %w", b.name, err)
		}
		if tr != nil {
			if err := writeChromeTrace(o.ChromeTrace, tr); err != nil {
				return nil, fmt.Errorf("singlenode %s: %w", b.name, err)
			}
			o.logf("singlenode: wrote Chrome trace to %s", o.ChromeTrace)
		}

		row := SingleNodeRow{Bench: b.name, HostNs: hostNs, Metrics: res.Metrics}
		for _, n := range res.Nodes {
			row.GuestInsns += n.Engine.ExecInsns
			row.TranslateNs += n.Engine.TranslateNs
			row.Superblocks += n.Engine.Superblocks
			row.SuperblockInsns += n.Engine.SuperblockInsns
			row.FusedUops += n.Engine.FusedUops
			row.JumpCacheHits += n.Engine.JumpCacheHits
			row.Tier3Superblocks += n.Engine.Tier3Superblocks
			row.Tier3Insns += n.Engine.Tier3Insns
			row.Tier3Demotions += n.Engine.Tier3Demotions
			row.PeepApplied += n.Engine.PeepApplied
			row.VerifiedSuperblocks += n.Engine.VerifiedSuperblocks
			row.VerifyDemotions += n.Engine.VerifyDemotions
			row.VerifiedTier3 += n.Engine.VerifiedTier3
			row.Tier3CheckFailures += n.Engine.Tier3CheckFailures
		}
		for _, t := range res.Threads {
			row.ExecNs += t.ExecNs
			row.FaultNs += t.FaultNs
			row.SyscallNs += t.SyscallNs
		}
		if hostNs > 0 {
			row.InsnsPerSec = float64(row.GuestInsns) / (float64(hostNs) / 1e9)
		}
		out.Rows = append(out.Rows, row)
		o.logf("singlenode: %s: %.1fM insns in %.2fs host (%.1fM insns/s)",
			b.name, float64(row.GuestInsns)/1e6, float64(hostNs)/1e9, row.InsnsPerSec/1e6)
		if tc.Verify {
			o.logf("singlenode: %s: verify: %d superblocks proved (%d demoted), %d tier-3 checked (%d rejected)",
				b.name, row.VerifiedSuperblocks, row.VerifyDemotions,
				row.VerifiedTier3, row.Tier3CheckFailures)
		}
	}
	return out, nil
}

// Print renders the suite as a table.
func (s *SingleNode) Print(w io.Writer) {
	note := ""
	if s.Verify {
		note = ", verify=on"
	}
	fmt.Fprintf(w, "Single-node translator throughput (superblocks=%v, jump cache=%v, tier3=%v, peephole=%v%s)\n",
		!s.NoSuperblock, !s.NoJumpCache, !s.NoTier3, !s.NoPeephole, note)
	fmt.Fprintf(w, "%-14s %-12s %-12s %-14s %-12s %-8s %-8s %-8s\n",
		"bench", "insns(M)", "host(s)", "insns/s(M)", "superblocks", "tier3", "t3insnsM", "peep")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%-14s %-12.1f %-12.2f %-14.1f %-12d %-8d %-8.1f %-8d\n",
			r.Bench, float64(r.GuestInsns)/1e6, float64(r.HostNs)/1e9,
			r.InsnsPerSec/1e6, r.Superblocks, r.Tier3Superblocks,
			float64(r.Tier3Insns)/1e6, r.PeepApplied)
	}
}

// WriteJSON emits the machine-readable form (committed as BENCH_*.json).
func (s *SingleNode) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// writeChromeTrace dumps tr as a Chrome trace_event file at path.
func writeChromeTrace(path string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SingleNodeMatrix is several suite runs under different tier ablations,
// committed together as one BENCH_*.json (the `configs` schema).
type SingleNodeMatrix struct {
	Configs []*SingleNode `json:"configs"`
}

// VerifyFails counts translation-validation failures across the suite:
// superblock verify demotions plus rejected tier-3 compilations. On a
// sound translator this is zero; nonzero means a lowering/peephole/tier-3
// soundness bug (or an over-strict checker) and should fail the run.
func (s *SingleNode) VerifyFails() uint64 {
	var n uint64
	for _, r := range s.Rows {
		n += r.VerifyDemotions + r.Tier3CheckFailures
	}
	return n
}

// VerifyFails sums translation-validation failures over every configuration.
func (m *SingleNodeMatrix) VerifyFails() uint64 {
	var n uint64
	for _, sn := range m.Configs {
		n += sn.VerifyFails()
	}
	return n
}

// RunSingleNodeMatrix runs the suite once per tier configuration.
func RunSingleNodeMatrix(o Options, tcs []TierConfig) (*SingleNodeMatrix, error) {
	m := &SingleNodeMatrix{}
	for _, tc := range tcs {
		sn, err := RunSingleNode(o, tc)
		if err != nil {
			return nil, err
		}
		m.Configs = append(m.Configs, sn)
	}
	return m, nil
}

// Print renders every configuration's table.
func (m *SingleNodeMatrix) Print(w io.Writer) {
	for i, sn := range m.Configs {
		if i > 0 {
			fmt.Fprintln(w)
		}
		sn.Print(w)
	}
}

// WriteJSON emits the machine-readable form.
func (m *SingleNodeMatrix) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
