package dsm

import (
	"math/rand"
	"testing"

	"dqemu/internal/mem"
)

// TestDirectoryRandomizedInvariants drives the directory with thousands of
// randomly interleaved page requests from several nodes, while the mock
// environment below plays the nodes' side of the protocol (answering
// fetches and invalidations in random order). After every event it checks
// the MSI invariants: at most one Modified copy, never M plus Shared, and
// the directory's owner/sharer view consistent with the nodes' copies when
// the page is quiescent.
func TestDirectoryRandomizedInvariants(t *testing.T) {
	const nodes = 5
	const pages = 6
	r := rand.New(rand.NewSource(12345))

	env := &envCheck{t: t, copies: map[uint64]map[int]int{}, requested: map[reqKey]bool{}}
	d := New(env, nil, nil)
	env.d = d

	for step := 0; step < 20000; step++ {
		// Deliver a pending fetch/invalidation with some probability so
		// transactions interleave with new requests.
		if len(env.queue) > 0 && r.Intn(2) == 0 {
			i := r.Intn(len(env.queue))
			fn := env.queue[i]
			env.queue = append(env.queue[:i], env.queue[i+1:]...)
			fn()
		} else {
			node := r.Intn(nodes)
			page := uint64(r.Intn(pages))
			write := r.Intn(2) == 0
			// A node with a satisfying copy doesn't fault, and a node with
			// this request outstanding waits, like a real node.
			perm := env.permOf(page, node)
			if write && perm == 2 || !write && perm >= 1 {
				continue
			}
			if env.requested[reqKey{node, page, write}] {
				continue
			}
			env.requested[reqKey{node, page, write}] = true
			d.OnRequest(Request{Node: node, TID: int64(node*100000 + step), Page: page, Addr: page * 4096, Write: write})
		}
		env.checkInvariants()
	}
	// Drain and re-check until quiescent.
	for len(env.queue) > 0 {
		fn := env.queue[0]
		env.queue = env.queue[1:]
		fn()
		env.checkInvariants()
	}
	if _, _, busy := d.State(0); busy {
		t.Error("page 0 still busy after drain")
	}
}

type reqKey struct {
	node  int
	page  uint64
	write bool
}

// envCheck tracks each node's copy (0 none, 1 shared, 2 modified) and
// checks invariants; fetches/invalidations are queued for reordering.
type envCheck struct {
	t *testing.T
	d *Directory

	copies    map[uint64]map[int]int
	requested map[reqKey]bool
	queue     []func()
}

func (e *envCheck) permOf(page uint64, node int) int {
	if m := e.copies[page]; m != nil {
		return m[node]
	}
	return 0
}

func (e *envCheck) setPerm(page uint64, node, perm int) {
	m := e.copies[page]
	if m == nil {
		m = map[int]int{}
		e.copies[page] = m
	}
	if perm == 0 {
		delete(m, node)
	} else {
		m[node] = perm
	}
}

func (e *envCheck) grant(to int, page uint64, write bool) {
	if write {
		for n, p := range e.copies[page] {
			if n != to && p != 0 {
				e.t.Fatalf("exclusive grant of page %d to node %d while node %d holds %d", page, to, n, p)
			}
		}
		e.setPerm(page, to, 2)
		// A write grant also satisfies a pending read request.
		delete(e.requested, reqKey{to, page, false})
	} else {
		for n, p := range e.copies[page] {
			if n != to && p == 2 {
				e.t.Fatalf("shared grant of page %d to node %d while node %d holds M", page, to, n)
			}
		}
		e.setPerm(page, to, 1)
	}
	delete(e.requested, reqKey{to, page, write})
}

// ---- dsm.Env implementation ----

func (e *envCheck) SendContent(to int, page uint64, perm mem.Perm) {
	e.grant(to, page, perm == mem.PermReadWrite)
}

func (e *envCheck) SendReaffirm(to int, page uint64, perm mem.Perm) {
	if e.permOf(page, to) == 0 {
		e.t.Fatalf("reaffirm of page %d to node %d which holds nothing", page, to)
	}
	e.grant(to, page, perm == mem.PermReadWrite)
}

func (e *envCheck) SendInvalidate(to int, page uint64) {
	e.queue = append(e.queue, func() {
		e.setPerm(page, to, 0)
		if err := e.d.OnInvAck(to, page); err != nil {
			e.t.Fatalf("inv-ack: %v", err)
		}
	})
}

func (e *envCheck) SendFetch(owner int, page uint64, invalidate bool) {
	e.queue = append(e.queue, func() {
		if e.permOf(page, owner) != 2 {
			e.t.Fatalf("fetch from node %d for page %d which it does not own", owner, page)
		}
		if invalidate {
			e.setPerm(page, owner, 0)
		} else {
			e.setPerm(page, owner, 1)
		}
		if err := e.d.OnFetchReply(owner, page, nil, invalidate); err != nil {
			e.t.Fatalf("fetch reply: %v", err)
		}
	})
}

func (e *envCheck) SendRetry(to int, page uint64, tid int64) {
	delete(e.requested, reqKey{to, page, false})
	delete(e.requested, reqKey{to, page, true})
}

func (e *envCheck) HomeWriteback(page uint64, data []byte) {}

// HomeSetPerm is how the directory manages the master's own copy (node 0);
// mirror it so the invariant checker sees the master too.
func (e *envCheck) HomeSetPerm(page uint64, perm mem.Perm) {
	switch perm {
	case mem.PermNone:
		e.setPerm(page, 0, 0)
	case mem.PermRead:
		e.setPerm(page, 0, 1)
	case mem.PermReadWrite:
		e.setPerm(page, 0, 2)
	}
}
func (e *envCheck) BroadcastRemap(orig uint64, shadows []uint64) {}
func (e *envCheck) PushPage(to int, page uint64)                 {}
func (e *envCheck) SplitHome(orig uint64, shadows []uint64)      {}

func (e *envCheck) checkInvariants() {
	for page, m := range e.copies {
		mods, shared := 0, 0
		for _, p := range m {
			switch p {
			case 2:
				mods++
			case 1:
				shared++
			}
		}
		if mods > 1 {
			e.t.Fatalf("page %d has %d modified copies", page, mods)
		}
		if mods == 1 && shared > 0 {
			e.t.Fatalf("page %d has M plus %d shared copies", page, shared)
		}
		owner, _, busy := e.d.State(page)
		if busy || len(e.queue) > 0 {
			continue // interim state while events are in flight
		}
		if owner > 0 && m[owner] != 2 {
			e.t.Fatalf("directory says node %d owns page %d but it holds %d", owner, page, m[owner])
		}
	}
}
