package dsm

// Model checker for the MSI directory: an exhaustive, table-driven
// exploration of (state, event) space on one page with a master and two
// slaves. Unlike the randomized property test (property_test.go), which
// samples long interleavings, this test enumerates EVERY event sequence up
// to a fixed depth and, in every reachable state:
//
//   - checks the owner/sharer invariants (owner excludes sharers, at most
//     one Modified copy, directory view matches the nodes' copies),
//   - checks the transaction bookkeeping (busy iff replies are outstanding,
//     ack counter matches the set of owed acks, no queued requests on an
//     idle entry),
//   - probes every ILLEGAL event (fetch reply nobody asked for, fetch reply
//     from the wrong node, unsolicited or duplicate inv-ack) and asserts the
//     directory rejects it with an error without mutating its state.
//
// A transition table (TestDirectoryTransitionTable) pins the expected
// outcome of each named protocol scenario explicitly.

import (
	"fmt"
	"testing"

	"dqemu/internal/mem"
)

const mcPage = uint64(7)

// mcEv is one model event.
type mcEv struct {
	kind  byte // 'r' request, 'f' fetch reply, 'a' inv ack
	node  int
	write bool
}

func (e mcEv) String() string {
	switch e.kind {
	case 'r':
		op := "R"
		if e.write {
			op = "W"
		}
		return fmt.Sprintf("req(%d,%s)", e.node, op)
	case 'f':
		return "fetchReply"
	case 'a':
		return fmt.Sprintf("invAck(%d)", e.node)
	}
	return "?"
}

// mcEnv plays the nodes' side of the protocol with instantaneous sends and
// explicit obligations (a fetch or inv-ack owed to the directory) that the
// explorer delivers as separate events.
type mcEnv struct {
	t *testing.T
	d *Directory

	perms     [3]int // per node: 0 none, 1 shared, 2 modified
	owedFetch int    // node that owes a fetch reply (0 = none)
	owedInv   bool   // the owed fetch also revokes the copy
	owedAcks  NodeSet
	requested map[[2]int]bool // (node, write) with a request outstanding
}

func newMCEnv(t *testing.T) (*mcEnv, *Directory) {
	env := &mcEnv{t: t, requested: map[[2]int]bool{}}
	// A fresh entry has owner == Master: the home copy is resident and
	// writable on the master until the directory says otherwise.
	env.perms[0] = 2
	d := New(env, nil, nil)
	env.d = d
	return env, d
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func (e *mcEnv) SendContent(to int, page uint64, perm mem.Perm) {
	if perm == mem.PermReadWrite {
		e.perms[to] = 2
		delete(e.requested, [2]int{to, 0})
	} else {
		e.perms[to] = 1
	}
	delete(e.requested, [2]int{to, b2i(perm == mem.PermReadWrite)})
}

func (e *mcEnv) SendReaffirm(to int, page uint64, perm mem.Perm) {
	if e.perms[to] == 0 {
		e.t.Fatalf("reaffirm to node %d which holds nothing", to)
	}
	e.SendContent(to, page, perm)
}

func (e *mcEnv) SendInvalidate(to int, page uint64) {
	if e.owedAcks.Has(to) {
		e.t.Fatalf("node %d invalidated twice", to)
	}
	e.owedAcks = e.owedAcks.Add(to)
}

func (e *mcEnv) SendFetch(owner int, page uint64, invalidate bool) {
	if e.owedFetch != 0 {
		e.t.Fatalf("second fetch issued while one is outstanding")
	}
	if e.perms[owner] != 2 {
		e.t.Fatalf("fetch from node %d which does not hold M", owner)
	}
	e.owedFetch, e.owedInv = owner, invalidate
}

func (e *mcEnv) SendRetry(to int, page uint64, tid int64) {
	delete(e.requested, [2]int{to, 0})
	delete(e.requested, [2]int{to, 1})
}

func (e *mcEnv) HomeWriteback(page uint64, data []byte) {}

func (e *mcEnv) HomeSetPerm(page uint64, perm mem.Perm) {
	switch perm {
	case mem.PermNone:
		e.perms[0] = 0
	case mem.PermRead:
		e.perms[0] = 1
	case mem.PermReadWrite:
		e.perms[0] = 2
	}
}

func (e *mcEnv) BroadcastRemap(orig uint64, shadows []uint64) { e.t.Fatal("unexpected remap") }
func (e *mcEnv) PushPage(to int, page uint64)                 { e.t.Fatal("unexpected push") }
func (e *mcEnv) SplitHome(orig uint64, shadows []uint64)      { e.t.Fatal("unexpected split") }

// apply executes one (previously enabled) event.
func (e *mcEnv) apply(ev mcEv) {
	switch ev.kind {
	case 'r':
		e.requested[[2]int{ev.node, b2i(ev.write)}] = true
		e.d.OnRequest(Request{Node: ev.node, TID: int64(ev.node), Page: mcPage,
			Addr: mcPage * 4096, Write: ev.write})
	case 'f':
		owner := e.owedFetch
		e.owedFetch = 0
		if e.owedInv {
			e.perms[owner] = 0
		} else {
			e.perms[owner] = 1
		}
		if err := e.d.OnFetchReply(owner, mcPage, nil, e.owedInv); err != nil {
			e.t.Fatalf("legal fetch reply rejected: %v", err)
		}
	case 'a':
		e.owedAcks = e.owedAcks.Remove(ev.node)
		e.perms[ev.node] = 0
		if err := e.d.OnInvAck(ev.node, mcPage); err != nil {
			e.t.Fatalf("legal inv-ack rejected: %v", err)
		}
	}
}

// enabled returns every event a real cluster could produce in this state: a
// node faults only for an access its copy does not satisfy and blocks while
// its request is outstanding; fetch replies and inv-acks only exist once
// owed.
func (e *mcEnv) enabled() []mcEv {
	var evs []mcEv
	for node := 0; node < 3; node++ {
		for _, write := range []bool{false, true} {
			if write && e.perms[node] == 2 || !write && e.perms[node] >= 1 {
				continue
			}
			if e.requested[[2]int{node, b2i(write)}] {
				continue
			}
			evs = append(evs, mcEv{kind: 'r', node: node, write: write})
		}
	}
	if e.owedFetch != 0 {
		evs = append(evs, mcEv{kind: 'f'})
	}
	e.owedAcks.ForEach(func(n int) {
		evs = append(evs, mcEv{kind: 'a', node: n})
	})
	return evs
}

// entrySnap is the mutable directory state an illegal event must not touch.
type entrySnap struct {
	owner      int
	sharers    NodeSet
	busy       bool
	acksLeft   int
	fetchFrom  int
	invPending NodeSet
	pending    int
}

func snap(e *entry) entrySnap {
	return entrySnap{e.owner, e.sharers, e.busy, e.acksLeft, e.fetchFrom, e.invPending, len(e.pending)}
}

// checkState validates every invariant in the current state.
func (e *mcEnv) checkState(t *testing.T, trace []mcEv) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("after %v: %s", trace, fmt.Sprintf(format, args...))
	}
	ent := e.d.pages[mcPage]
	if ent == nil {
		return
	}
	// Copy invariants.
	mods, shared := 0, 0
	for _, p := range e.perms {
		switch p {
		case 2:
			mods++
		case 1:
			shared++
		}
	}
	if mods > 1 {
		fail("%d modified copies", mods)
	}
	if mods == 1 && shared > 0 {
		fail("M coexists with %d shared copies (perms %v)", shared, e.perms)
	}
	// Directory/copy agreement.
	if ent.owner > 0 && !ent.sharers.Empty() {
		fail("owner %d coexists with sharers %v", ent.owner, ent.sharers)
	}
	for node, p := range e.perms {
		if p == 2 && node != 0 && ent.owner != node {
			fail("node %d holds M but directory owner is %d", node, ent.owner)
		}
		if p == 1 && node != 0 && !ent.sharers.Has(node) {
			fail("node %d holds S but is not a sharer (%v)", node, ent.sharers)
		}
	}
	// Transaction bookkeeping.
	obligations := e.owedFetch != 0 || !e.owedAcks.Empty()
	if ent.busy != obligations {
		fail("busy=%v but outstanding replies=%v", ent.busy, obligations)
	}
	if ent.acksLeft != e.owedAcks.Count() || ent.invPending != e.owedAcks {
		fail("directory expects %d acks from %v, env owes %v", ent.acksLeft, ent.invPending, e.owedAcks)
	}
	if ent.fetchFrom != e.owedFetch {
		fail("directory expects a fetch from %d, env owes one from %d", ent.fetchFrom, e.owedFetch)
	}
	if !ent.busy && len(ent.pending) > 0 {
		fail("%d requests queued on an idle entry", len(ent.pending))
	}
}

// probeIllegal fires every event that must NOT be accepted in this state and
// asserts each is rejected with an error and zero state change.
func (e *mcEnv) probeIllegal(t *testing.T, trace []mcEv) {
	t.Helper()
	ent := e.d.entryOf(mcPage)
	before := snap(ent)
	permsBefore := e.perms

	if e.owedFetch == 0 {
		for _, n := range []int{1, 2} {
			if err := e.d.OnFetchReply(n, mcPage, nil, true); err == nil {
				t.Fatalf("after %v: fetch reply from %d accepted with no fetch outstanding", trace, n)
			}
		}
	} else {
		wrong := 3 - e.owedFetch
		if err := e.d.OnFetchReply(wrong, mcPage, nil, e.owedInv); err == nil {
			t.Fatalf("after %v: fetch reply from node %d accepted, but the fetch targets node %d",
				trace, wrong, e.owedFetch)
		}
	}
	for _, n := range []int{1, 2} {
		if !e.owedAcks.Has(n) {
			if err := e.d.OnInvAck(n, mcPage); err == nil {
				t.Fatalf("after %v: unsolicited inv-ack from node %d accepted", trace, n)
			}
		}
	}
	// A reply for a page with no transaction at all is always illegal.
	if err := e.d.OnFetchReply(1, mcPage+1, nil, true); err == nil {
		t.Fatalf("after %v: fetch reply for an untouched page accepted", trace)
	}
	if err := e.d.OnInvAck(1, mcPage+1); err == nil {
		t.Fatalf("after %v: inv-ack for an untouched page accepted", trace)
	}

	if got := snap(ent); got != before {
		t.Fatalf("after %v: rejected event mutated directory state: %+v -> %+v", trace, before, got)
	}
	if e.perms != permsBefore {
		t.Fatalf("after %v: rejected event mutated node copies", trace)
	}
}

// TestDirectoryModelCheck exhaustively explores every event sequence up to
// the depth bound, replaying each prefix from scratch so states are
// independent.
func TestDirectoryModelCheck(t *testing.T) {
	depth := 6
	if testing.Short() {
		depth = 5
	}
	states := 0
	var explore func(seq []mcEv)
	explore = func(seq []mcEv) {
		env, _ := newMCEnv(t)
		for _, ev := range seq {
			env.apply(ev)
		}
		env.checkState(t, seq)
		env.probeIllegal(t, seq)
		states++
		if len(seq) == depth {
			return
		}
		for _, ev := range env.enabled() {
			explore(append(seq[:len(seq):len(seq)], ev))
		}
	}
	explore(nil)
	t.Logf("explored %d states to depth %d", states, depth)
	if states < 1000 {
		t.Fatalf("state space suspiciously small: %d states", states)
	}
}

// TestDirectoryTransitionTable pins named protocol scenarios to their
// expected end state, send counts, and error behavior.
func TestDirectoryTransitionTable(t *testing.T) {
	type expect struct {
		owner   int
		sharers NodeSet
		busy    bool
	}
	cases := []struct {
		name  string
		seq   []mcEv
		want  expect
		perms [3]int
	}{
		{
			name:  "read miss shares the home copy",
			seq:   []mcEv{{kind: 'r', node: 1}},
			want:  expect{owner: NoOwner, sharers: NodeSet(0).Add(1)},
			perms: [3]int{1, 1, 0},
		},
		{
			name:  "two readers coexist",
			seq:   []mcEv{{kind: 'r', node: 1}, {kind: 'r', node: 2}},
			want:  expect{owner: NoOwner, sharers: NodeSet(0).Add(1).Add(2)},
			perms: [3]int{1, 1, 1},
		},
		{
			name: "write upgrade invalidates the other sharer",
			seq: []mcEv{
				{kind: 'r', node: 1}, {kind: 'r', node: 2},
				{kind: 'r', node: 1, write: true}, {kind: 'a', node: 2},
			},
			want:  expect{owner: 1},
			perms: [3]int{0, 2, 0},
		},
		{
			name: "write-write migration via fetch-invalidate",
			seq: []mcEv{
				{kind: 'r', node: 1, write: true},
				{kind: 'r', node: 2, write: true}, {kind: 'f'},
			},
			want:  expect{owner: 2},
			perms: [3]int{0, 0, 2},
		},
		{
			name: "remote read downgrades the owner",
			seq: []mcEv{
				{kind: 'r', node: 1, write: true},
				{kind: 'r', node: 2}, {kind: 'f'},
			},
			want:  expect{owner: NoOwner, sharers: NodeSet(0).Add(1).Add(2)},
			perms: [3]int{1, 1, 1},
		},
		{
			name: "master write pulls the page home",
			seq: []mcEv{
				{kind: 'r', node: 1, write: true},
				{kind: 'r', node: 0, write: true}, {kind: 'f'},
			},
			want:  expect{owner: Master},
			perms: [3]int{2, 0, 0},
		},
		{
			name: "owner read re-request is reaffirmed, not overwritten",
			seq: []mcEv{
				{kind: 'r', node: 1, write: true},
				{kind: 'r', node: 1},
			},
			want:  expect{owner: 1},
			perms: [3]int{0, 2, 0},
		},
		{
			name: "request queued behind a busy fetch is served after it",
			seq: []mcEv{
				{kind: 'r', node: 1, write: true},
				{kind: 'r', node: 2, write: true}, // busy: fetch owed from 1
				{kind: 'r', node: 1},              // queued
				{kind: 'f'},                       // grants 2 M, then fetches it back for 1's read
				{kind: 'f'},
			},
			want:  expect{owner: NoOwner, sharers: NodeSet(0).Add(1).Add(2)},
			perms: [3]int{1, 1, 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env, d := newMCEnv(t)
			for _, ev := range tc.seq {
				env.apply(ev)
			}
			ent := d.entryOf(mcPage)
			if ent.owner != tc.want.owner || ent.sharers != tc.want.sharers || ent.busy != tc.want.busy {
				t.Fatalf("end state owner=%d sharers=%v busy=%v, want %+v",
					ent.owner, ent.sharers, ent.busy, tc.want)
			}
			if env.perms != tc.perms {
				t.Fatalf("node copies %v, want %v", env.perms, tc.perms)
			}
			env.checkState(t, tc.seq)
			env.probeIllegal(t, tc.seq)
		})
	}
}

// TestDirectoryRejectsStaleReplies spells out the rejection table the model
// checker probes implicitly: each row is an illegal (state, event) pair.
func TestDirectoryRejectsStaleReplies(t *testing.T) {
	cases := []struct {
		name string
		seq  []mcEv // setup
		fire func(d *Directory) error
	}{
		{
			name: "fetch reply with no transaction",
			fire: func(d *Directory) error { return d.OnFetchReply(1, mcPage, nil, true) },
		},
		{
			name: "inv-ack with no transaction",
			fire: func(d *Directory) error { return d.OnInvAck(1, mcPage) },
		},
		{
			name: "fetch reply while only invalidations are outstanding",
			seq: []mcEv{
				{kind: 'r', node: 1}, {kind: 'r', node: 2},
				{kind: 'r', node: 0, write: true}, // invalidates 1 and 2; no fetch
			},
			fire: func(d *Directory) error { return d.OnFetchReply(1, mcPage, nil, true) },
		},
		{
			name: "fetch reply from the wrong node",
			seq: []mcEv{
				{kind: 'r', node: 1, write: true},
				{kind: 'r', node: 2, write: true}, // fetch owed from 1
			},
			fire: func(d *Directory) error { return d.OnFetchReply(2, mcPage, nil, true) },
		},
		{
			name: "duplicate fetch reply",
			seq: []mcEv{
				{kind: 'r', node: 1, write: true},
				{kind: 'r', node: 2, write: true}, {kind: 'f'},
			},
			fire: func(d *Directory) error { return d.OnFetchReply(1, mcPage, nil, true) },
		},
		{
			name: "inv-ack from a node that was not invalidated",
			seq: []mcEv{
				{kind: 'r', node: 1}, {kind: 'r', node: 2, write: true}, // invalidates 1 only
			},
			fire: func(d *Directory) error { return d.OnInvAck(2, mcPage) },
		},
		{
			name: "duplicate inv-ack",
			seq: []mcEv{
				{kind: 'r', node: 1}, {kind: 'r', node: 2},
				{kind: 'r', node: 0, write: true}, {kind: 'a', node: 1},
			},
			fire: func(d *Directory) error { return d.OnInvAck(1, mcPage) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env, d := newMCEnv(t)
			for _, ev := range tc.seq {
				env.apply(ev)
			}
			if err := tc.fire(d); err == nil {
				t.Fatal("illegal transition accepted")
			}
		})
	}
}
