package workloads

import (
	"fmt"

	"dqemu/internal/image"
)

// Racy is DQSan's validation workload: threads deliberately race on guest
// memory in three distinct ways — an unlocked read-modify-write counter, a
// message-passing flag/payload pair with no fence or atomic, and seeded
// scatter writes into a shared table — while a mutex-protected control
// counter exercises the same cache lines with proper synchronization and
// must stay silent. The seed parametrizes the scatter pattern (and is
// spliced into the payload), so a given (threads, rounds, seed) triple
// produces a reproducible report under the deterministic simulator.
func Racy(threads, rounds int, seed int64) (*image.Image, error) {
	if threads < 2 || threads > 32 {
		return nil, fmt.Errorf("workloads: racy supports 2..32 threads")
	}
	src := fmt.Sprintf(`
long THREADS = %d;
long ROUNDS  = %d;
long SEED    = %d;

long lock;
long locked;     // control: mutex-protected, the sanitizer must stay silent
long counter;    // race 1: unlocked read-modify-write
long flag;       // race 2: message passing without a fence or atomic
long data;       // race 2: payload published through the unsynchronized flag
long seen;
long table[256]; // race 3: seeded scatter writes
long tids[32];

long worker(long idx) {
	long r = SEED + idx * 2654435761;
	for (long i = 0; i < ROUNDS; i++) {
		counter = counter + 1;

		mutex_lock(&lock);
		locked = locked + 1;
		mutex_unlock(&lock);

		r = r * 1103515245 + 12345;
		long j = (r >> 16) & 255;
		table[j] = table[j] + idx + 1;
	}
	if (idx == 0) {
		data = SEED + 7;
		flag = 1;
	}
	if (idx == 1) {
		long spin = 0;
		while (flag == 0 && spin < 64) { spin = spin + 1; yield(); }
		seen = data;
	}
	return 0;
}

long main() {
	for (long i = 0; i < THREADS; i++) tids[i] = thread_create((long)worker, i);
	for (long i = 0; i < THREADS; i++) thread_join(tids[i]);
	print_str("counter="); print_long(counter); print_char('\n');
	print_str("locked=");  print_long(locked);  print_char('\n');
	print_str("seen=");    print_long(seen);    print_char('\n');
	return 0;
}`, threads, rounds, seed)
	return build("racy.mc", src)
}
