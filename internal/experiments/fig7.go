package experiments

import (
	"fmt"
	"io"

	"dqemu/internal/core"
	"dqemu/internal/image"
	"dqemu/internal/workloads"
)

// Fig7 reproduces Figure 7: blackscholes and swaptions with 32 threads over
// 1..MaxSlaves slave nodes, in three configurations — origin, +forwarding,
// +forwarding+splitting — normalized to one slave node (origin), with the
// single-node QEMU 4.2.0 ratio as the flat reference line.
type Fig7 struct {
	Benchmarks []Fig7Bench
}

// Fig7Bench is one benchmark's sweep.
type Fig7Bench struct {
	Name      string
	QEMURatio float64 // QEMU time relative to 1-slave origin (speedup)
	Rows      []Fig7Row
	// Gains summarize the optimizations: average % improvement over origin.
	ForwardingGainPct float64
	FullGainPct       float64
}

// Fig7Row is one cluster size.
type Fig7Row struct {
	Slaves         int
	OriginNs       int64
	ForwardNs      int64
	FullNs         int64 // forwarding + splitting
	OriginSpeedup  float64
	ForwardSpeedup float64
	FullSpeedup    float64
}

// RunFig7 executes the PARSEC sweep.
func RunFig7(o Options) (*Fig7, error) {
	o.normalize()
	threads := 32
	options, rounds := 32768, 12
	swapts, trials := 64, 600
	switch o.Scale {
	case Full:
		options, rounds = 262144, 24
		swapts, trials = 128, 20000
	case Smoke:
		options, rounds = 2048, 2
		swapts, trials = 32, 40
	}
	out := &Fig7{}
	// Both kernels partition their chunks for the cluster size (PARSEC's
	// static partitioning), so the images are rebuilt per slave count.
	bsBuilder := func(slaves int) (*image.Image, error) {
		nodes := slaves
		if nodes < 1 {
			nodes = 1
		}
		return workloads.Blackscholes(threads, options, rounds, nodes)
	}
	swBuilder := func(slaves int) (*image.Image, error) {
		nodes := slaves
		if nodes < 1 {
			nodes = 1
		}
		return workloads.Swaptions(threads, swapts, trials, nodes)
	}
	for _, b := range []struct {
		name    string
		builder func(int) (*image.Image, error)
	}{{"blackscholes", bsBuilder}, {"swaptions", swBuilder}} {
		bench, err := runFig7Bench(o, b.name, b.builder)
		if err != nil {
			return nil, err
		}
		out.Benchmarks = append(out.Benchmarks, *bench)
	}
	return out, nil
}

func runFig7Bench(o Options, name string, builder func(int) (*image.Image, error)) (*Fig7Bench, error) {
	bench := &Fig7Bench{Name: name}
	imQ, err := builder(0)
	if err != nil {
		return nil, err
	}
	qemu, err := run(imQ, baseConfig(0))
	if err != nil {
		return nil, fmt.Errorf("fig7 %s qemu: %w", name, err)
	}
	o.logf("fig7 %s: qemu %.3fs", name, seconds(qemu.TimeNs))

	runCfg := func(im *image.Image, slaves int, fwd, split bool) (*core.Result, error) {
		cfg := baseConfig(slaves)
		cfg.Forwarding = fwd
		cfg.Splitting = split
		return run(im, cfg)
	}
	var fwdGain, fullGain float64
	for slaves := 1; slaves <= o.MaxSlaves; slaves++ {
		im, err := builder(slaves)
		if err != nil {
			return nil, err
		}
		origin, err := runCfg(im, slaves, false, false)
		if err != nil {
			return nil, fmt.Errorf("fig7 %s origin slaves=%d: %w", name, slaves, err)
		}
		fwd, err := runCfg(im, slaves, true, false)
		if err != nil {
			return nil, fmt.Errorf("fig7 %s fwd slaves=%d: %w", name, slaves, err)
		}
		full, err := runCfg(im, slaves, true, true)
		if err != nil {
			return nil, fmt.Errorf("fig7 %s full slaves=%d: %w", name, slaves, err)
		}
		bench.Rows = append(bench.Rows, Fig7Row{
			Slaves: slaves, OriginNs: origin.TimeNs, ForwardNs: fwd.TimeNs, FullNs: full.TimeNs,
		})
		fwdGain += pctGain(origin.TimeNs, fwd.TimeNs)
		fullGain += pctGain(origin.TimeNs, full.TimeNs)
		o.logf("fig7 %s: %d slave(s): origin %.3fs fwd %.3fs full %.3fs",
			name, slaves, seconds(origin.TimeNs), seconds(fwd.TimeNs), seconds(full.TimeNs))
	}
	base := bench.Rows[0].OriginNs
	for i := range bench.Rows {
		r := &bench.Rows[i]
		r.OriginSpeedup = float64(base) / float64(r.OriginNs)
		r.ForwardSpeedup = float64(base) / float64(r.ForwardNs)
		r.FullSpeedup = float64(base) / float64(r.FullNs)
	}
	bench.QEMURatio = float64(base) / float64(qemu.TimeNs)
	bench.ForwardingGainPct = fwdGain / float64(len(bench.Rows))
	bench.FullGainPct = fullGain / float64(len(bench.Rows))
	return bench, nil
}

func pctGain(origin, improved int64) float64 {
	return (float64(origin) - float64(improved)) / float64(origin) * 100
}

// Print renders the figure.
func (f *Fig7) Print(w io.Writer) {
	for _, b := range f.Benchmarks {
		fmt.Fprintf(w, "Figure 7: %s, 32 threads (speedup vs 1 slave, origin)\n", b.Name)
		fmt.Fprintf(w, "%-8s %-10s %-12s %-20s\n", "slaves", "origin", "forwarding", "forwarding+splitting")
		for _, r := range b.Rows {
			fmt.Fprintf(w, "%-8d %-10.2f %-12.2f %-20.2f\n",
				r.Slaves, r.OriginSpeedup, r.ForwardSpeedup, r.FullSpeedup)
		}
		fmt.Fprintf(w, "qemu-4.2.0 ratio: %.2f   avg gain: forwarding %.1f%%, full %.1f%%\n\n",
			b.QEMURatio, b.ForwardingGainPct, b.FullGainPct)
	}
}
