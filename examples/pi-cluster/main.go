// pi-cluster reproduces the shape of the paper's Figure 5 interactively:
// an embarrassingly parallel π computation with 48 threads is swept over
// cluster sizes, showing near-linear speedup as slave nodes are added —
// while the single-node QEMU baseline is stuck with its four cores.
package main

import (
	"fmt"
	"log"

	"dqemu"
	"dqemu/internal/workloads"
)

func main() {
	// 48 threads, each computing a 500-term Taylor series 400 times.
	im, err := workloads.Pi(48, 400, 500)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("pi scalability sweep (48 threads, 4 cores/node)")
	fmt.Printf("%-22s %-12s %s\n", "cluster", "time", "speedup")

	base := int64(0)
	for slaves := 0; slaves <= 4; slaves++ {
		cfg := dqemu.DefaultConfig()
		cfg.Slaves = slaves
		res, err := dqemu.Run(im, cfg)
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%d slave node(s)", slaves)
		if slaves == 0 {
			label = "qemu (single node)"
			base = res.TimeNs
		}
		fmt.Printf("%-22s %8.3f ms  %6.2fx\n", label,
			float64(res.TimeNs)/1e6, float64(base)/float64(res.TimeNs))
	}
}
