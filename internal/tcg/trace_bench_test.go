package tcg

import (
	"testing"

	"dqemu/internal/asm"
	"dqemu/internal/isa"
	"dqemu/internal/mem"
)

// benchHotLoop measures engine throughput on the shared hotLoop program
// at one tier of the translation ladder, reporting retired guest
// instructions per op so the tiers are directly comparable.
func benchHotLoop(b *testing.B, noSuper bool, tune ...func(*Engine)) {
	im, err := asm.Assemble(asm.Source{Name: "t.s", Text: hotLoop})
	if err != nil {
		b.Fatal(err)
	}
	space := mem.NewSpace(0)
	mem.InstallImage(space, im, mem.PermRead, mem.PermReadWrite)
	e := NewEngine(space, DefaultCostModel())
	e.NoSuperblock = noSuper
	e.NoTier3 = true    // the ladder below turns tiers back on explicitly
	e.HotThreshold = 20 // promote early, but with enough branch history for bias
	e.Tier3Threshold = 10
	for _, f := range tune {
		f(e)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		c := &CPU{PC: im.Entry, TID: 1}
		c.X[isa.RegSP] = 0x40000
		for {
			res := e.Exec(c, 1_000_000_000)
			if res.Reason == StopHalt {
				break
			}
			if res.Reason != StopBudget {
				b.Fatalf("stop %+v", res)
			}
		}
	}
	b.ReportMetric(float64(e.Stats.ExecInsns)/float64(b.N), "insns/op")
}

func BenchmarkHotLoopSuperblock(b *testing.B) { benchHotLoop(b, false) }
func BenchmarkHotLoopChained(b *testing.B)    { benchHotLoop(b, true) }
func BenchmarkHotLoopTier3(b *testing.B) {
	benchHotLoop(b, false, func(e *Engine) { e.NoTier3 = false; e.NoPeephole = true })
}
func BenchmarkHotLoopTier3Peep(b *testing.B) {
	benchHotLoop(b, false, func(e *Engine) { e.NoTier3 = false })
}
