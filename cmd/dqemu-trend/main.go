// dqemu-trend gates translator-throughput regressions across the checked-in
// BENCH_*.json history. It extracts the full-ladder (no ablation flags)
// insns/sec per workload from every prior file, takes the best prior figure
// per workload, and fails when the candidate file regresses any workload by
// more than -max-regress (default 10%).
//
// Four BENCH schemas exist in the tree; the tool understands the two
// single-node ones and the scenario-suite one, and skips the rest:
//
//   - {"configs": [...]}  — singlenode ablation matrix (dqemu-bench -exp
//     singlenode -ablate -json); the full-ladder config is the one with
//     every no_* flag false.
//   - {"rows": [...]}     — a single singlenode config at top level; used
//     only when its own no_* flags say the full ladder was on. The
//     scenario-suite report (dqemu-bench -exp scenario -json) is this
//     schema with "time_base": "virtual": its insns/sec figures divide by
//     virtual time, not host time, so they are only ever compared against
//     other virtual-base files — mixing time bases would gate real code
//     changes against a clock change.
//   - {"benches": [...]}  — wire-efficiency results (BENCH_pr4.json); no
//     throughput rows, skipped with a note.
//
// Usage:
//
//	dqemu-trend -candidate BENCH_pr6.json BENCH_*.json
//
// The candidate may also appear in the prior list (the glob above includes
// it); it is excluded from the baseline automatically.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// benchFile mirrors the union of the single-node BENCH schemas.
type benchFile struct {
	// Matrix schema.
	Configs []benchConfig `json:"configs"`
	// Flat schema: one config at top level.
	benchConfig
	// Wire schema marker; presence means "not a throughput file".
	Benches json.RawMessage `json:"benches"`
	// TimeBase marks what insns_per_sec divides by: "" (host time, the
	// singlenode suites) or "virtual" (scenario suites). Files are only
	// comparable within one time base.
	TimeBase string `json:"time_base"`
}

type benchConfig struct {
	NoSuperblock bool       `json:"no_superblock"`
	NoJumpCache  bool       `json:"no_jump_cache"`
	NoTier3      bool       `json:"no_tier3"`
	NoPeephole   bool       `json:"no_peephole"`
	Rows         []benchRow `json:"rows"`
}

func (c benchConfig) fullLadder() bool {
	return !c.NoSuperblock && !c.NoJumpCache && !c.NoTier3 && !c.NoPeephole
}

type benchRow struct {
	Bench       string  `json:"bench"`
	InsnsPerSec float64 `json:"insns_per_sec"`
}

func main() {
	candidate := flag.String("candidate", "", "BENCH file under test (required)")
	maxRegress := flag.Float64("max-regress", 0.10, "maximum allowed fractional insns/sec drop vs the best prior figure")
	flag.Parse()
	if *candidate == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: dqemu-trend -candidate BENCH_new.json BENCH_*.json")
		os.Exit(2)
	}

	cand, candBase, err := loadFullLadder(*candidate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dqemu-trend: %s: %v\n", *candidate, err)
		os.Exit(2)
	}
	if len(cand) == 0 {
		fmt.Fprintf(os.Stderr, "dqemu-trend: %s has no full-ladder rows\n", *candidate)
		os.Exit(2)
	}

	// Best prior figure per workload across every comparable file.
	best := map[string]float64{}
	bestFrom := map[string]string{}
	for _, path := range flag.Args() {
		if sameFile(path, *candidate) {
			continue
		}
		rows, base, err := loadFullLadder(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dqemu-trend: %s: %v\n", path, err)
			os.Exit(2)
		}
		if rows == nil {
			fmt.Printf("skip %s: no single-node throughput rows\n", path)
			continue
		}
		if base != candBase {
			fmt.Printf("skip %s: time base %q does not match candidate %q\n",
				path, baseName(base), baseName(candBase))
			continue
		}
		for bench, ips := range rows {
			if ips > best[bench] {
				best[bench], bestFrom[bench] = ips, path
			}
		}
	}
	if len(best) == 0 {
		fmt.Println("no comparable prior files; nothing to gate")
		return
	}

	benches := make([]string, 0, len(cand))
	for bench := range cand {
		benches = append(benches, bench)
	}
	sort.Strings(benches)
	failed := 0
	for _, bench := range benches {
		prior, ok := best[bench]
		if !ok {
			fmt.Printf("%-14s %12.1f M/s  (new workload, no prior)\n", bench, cand[bench]/1e6)
			continue
		}
		ratio := cand[bench] / prior
		status := "ok"
		if ratio < 1-*maxRegress {
			status = "REGRESSION"
			failed++
		}
		fmt.Printf("%-14s %12.1f M/s  vs best prior %12.1f M/s (%s)  %+.1f%%  %s\n",
			bench, cand[bench]/1e6, prior/1e6, bestFrom[bench], (ratio-1)*100, status)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "dqemu-trend: %d workload(s) regressed more than %.0f%%\n",
			failed, *maxRegress*100)
		os.Exit(1)
	}
}

// loadFullLadder returns bench -> insns/sec for the full-ladder config in
// path plus the file's time base, or a nil map (no error) when the file
// holds no single-node throughput data (e.g. the wire-efficiency schema).
func loadFullLadder(path string) (map[string]float64, string, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var f benchFile
	if err := json.Unmarshal(text, &f); err != nil {
		return nil, "", err
	}
	configs := f.Configs
	if configs == nil && f.Rows != nil {
		configs = []benchConfig{f.benchConfig}
	}
	if configs == nil {
		return nil, "", nil // wire schema or empty: not comparable
	}
	rows := map[string]float64{}
	for _, c := range configs {
		if !c.fullLadder() {
			continue
		}
		for _, r := range c.Rows {
			rows[r.Bench] = r.InsnsPerSec
		}
	}
	if len(rows) == 0 {
		return nil, "", nil // only ablated configs recorded (e.g. the seed file)
	}
	return rows, f.TimeBase, nil
}

// baseName renders a time base for messages ("" means host time).
func baseName(base string) string {
	if base == "" {
		return "host"
	}
	return base
}

func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && aa == bb
}
