package core

import (
	"testing"

	"dqemu/internal/mem"
	"dqemu/internal/netsim"
	"dqemu/internal/proto"
)

// wireShareSrc is a sharing-heavy guest: a mutex-protected counter page
// ping-pongs between nodes (write upgrades — the EncSame sweet spot), a
// striped array gives each node dirty pages the master must fetch back
// (delta replies), and a barrier-separated reduce forces cross-node reads
// of freshly written data.
const wireShareSrc = `
long counter;
long lock;
long arr[2048];
long bar[3];
long slots[8];
long worker(long idx) {
	for (long i = 0; i < 40; i++) {
		mutex_lock(&lock);
		counter += 1;
		mutex_unlock(&lock);
		arr[idx * 256 + (i % 256)] += idx + i;
	}
	barrier_wait(bar);
	long s = 0;
	for (long j = 0; j < 2048; j++) s += arr[j];
	slots[idx] = s;
	return 0;
}
long main() {
	barrier_init(bar, 6);
	long tids[6];
	for (long i = 0; i < 6; i++) tids[i] = thread_create((long)worker, i);
	for (long i = 0; i < 6; i++) thread_join(tids[i]);
	long x = 0;
	for (long i = 0; i < 6; i++) x = x ^ slots[i];
	print_long(counter);
	print_char(' ');
	print_long(x);
	print_char('\n');
	return 0;
}`

// wireVariants is the ablation matrix: full layer, delta only, coalescing
// only, and fully off (the pre-wire-layer baseline).
func wireVariants(base Config) map[string]Config {
	full := base
	noDelta := base
	noDelta.NoDelta = true
	noCoalesce := base
	noCoalesce.NoCoalesce = true
	off := base
	off.NoDelta = true
	off.NoCoalesce = true
	return map[string]Config{
		"full": full, "nodelta": noDelta, "nocoalesce": noCoalesce, "off": off,
	}
}

// TestWireAblationEquivalence is the core correctness statement: the wire
// layer and each of its halves must be invisible to the guest.
func TestWireAblationEquivalence(t *testing.T) {
	im := build(t, wireShareSrc)
	base := DefaultConfig()
	base.Slaves = 3

	ref, err := Run(im, func() Config { c := base; c.NoDelta = true; c.NoCoalesce = true; return c }())
	if err != nil {
		t.Fatal(err)
	}
	if ref.ExitCode != 0 {
		t.Fatalf("baseline exit %d console %q", ref.ExitCode, ref.Console)
	}
	for name, cfg := range wireVariants(base) {
		res, err := Run(im, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Console != ref.Console || res.ExitCode != ref.ExitCode {
			t.Errorf("%s diverged: got %q (exit %d), want %q (exit %d)",
				name, res.Console, res.ExitCode, ref.Console, ref.ExitCode)
		}
		switch name {
		case "off":
			if res.Wire != (WireStats{}) {
				t.Errorf("off: wire stats nonzero with layer ablated: %+v", res.Wire)
			}
		case "full", "nodelta", "nocoalesce":
			if res.Wire.SamePages+res.Wire.DeltaPages+res.Wire.RLEPages+res.Wire.FullPages == 0 {
				t.Errorf("%s: no payloads counted: %+v", name, res.Wire)
			}
		}
	}
}

// TestWireStatsSavings checks the layer actually encodes: on the sharing
// workload the counter/lock pages upgrade read->write constantly, so twins
// are current (EncSame) or near-current (small deltas), and body bytes must
// come in well under the full-page baseline.
func TestWireStatsSavings(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Slaves = 3
	res := buildRun(t, wireShareSrc, cfg)
	if res.ExitCode != 0 {
		t.Fatalf("exit %d console %q", res.ExitCode, res.Console)
	}
	w := res.Wire
	if w.SamePages+w.DeltaPages == 0 {
		t.Errorf("no same/delta encodings on a sharing workload: %+v", w)
	}
	if w.BodyBytes >= w.RawBytes {
		t.Errorf("no byte savings: body %d >= raw %d", w.BodyBytes, w.RawBytes)
	}
	if w.RawBytes == 0 {
		t.Fatalf("raw bytes not counted")
	}
	if ratio := float64(w.BodyBytes) / float64(w.RawBytes); ratio > 0.6 {
		t.Errorf("body/raw = %.2f, want < 0.6 on the sharing workload (%+v)", ratio, w)
	}
}

// TestWireForcedMismatchHeals corrupts every slave twin mid-run (simulating
// arbitrary belief-map divergence) and checks the mismatch-resend protocol
// restores coherence: the run must still produce the correct output, with
// the resend counter showing the heal path actually fired.
func TestWireForcedMismatchHeals(t *testing.T) {
	im := build(t, wireShareSrc)
	cfg := DefaultConfig()
	cfg.Slaves = 3

	ref, err := Run(im, cfg)
	if err != nil {
		t.Fatal(err)
	}

	c, err := NewCluster(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Skew twin versions at a few points mid-run: grants and pushes built
	// against the master's (now wrong) belief mismatch at the node and must
	// heal via FlagFullResend. Owned (read-write resident) pages are left
	// alone — their twin is the fetch-reply diff base, an invariant the
	// protocol maintains itself and checks loudly on the master.
	corrupted := 0
	for _, at := range []int64{2_000_000, 5_000_000, 9_000_000} {
		at := at
		c.k.Post(at, func() {
			for _, n := range c.nodes {
				if n.id == 0 {
					continue
				}
				for page, tw := range n.twins {
					if n.space.PermOf(page) == mem.PermReadWrite {
						continue
					}
					tw.ver += 1000
					corrupted++
				}
			}
		})
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Console != ref.Console || res.ExitCode != ref.ExitCode {
		t.Errorf("mismatch heal diverged: got %q (exit %d), want %q (exit %d)",
			res.Console, res.ExitCode, ref.Console, ref.ExitCode)
	}
	if corrupted == 0 {
		t.Skip("no twins existed at the corruption points")
	}
	if res.Wire.Resends == 0 && res.Wire.PushDrops == 0 {
		t.Errorf("corrupted %d twins but no resend/push-drop recorded: %+v", corrupted, res.Wire)
	}
}

// TestWirePushDropAlwaysRerequests pins the push-drop contract: a forwarded
// diff that cannot materialize must re-request the page with FlagFullResend
// even when a plain demand read is already outstanding. The directory
// suppresses plain reads from a node it just forwarded a push to (the push
// is supposed to answer them), so the outstanding read may never get a
// reply — without the unconditional full re-request the read's waiters
// would park until the virtual-time limit.
func TestWirePushDropAlwaysRerequests(t *testing.T) {
	im := build(t, wireShareSrc)
	cfg := DefaultConfig()
	cfg.Slaves = 2
	c, err := NewCluster(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := c.nodes[1]
	const page = uint64(0x123456)
	fullReqs := 0
	c.net.Trace = func(now int64, m *proto.Msg) {
		if m.Kind == proto.KPageReq && m.From == 1 && m.Page == page &&
			m.Flags&proto.FlagFullResend != 0 {
			fullReqs++
		}
	}

	// A demand read is outstanding — exactly the shape the directory
	// suppresses. The dropped delta (no twin to apply it against) must
	// still trigger a full re-request.
	n.requested[page] = reqRead
	pl := proto.PagePayload{Page: page, Ver: 7, BaseVer: 3, Enc: proto.EncDelta, Push: true}
	n.applyPush(&pl)
	if fullReqs != 1 {
		t.Fatalf("push drop with outstanding read sent %d full re-requests, want 1", fullReqs)
	}
	if n.requested[page]&reqRead == 0 {
		t.Errorf("read request bookkeeping lost after push drop")
	}

	// Without an outstanding read, and for the header-only encoding (which
	// also depends on a twin this node no longer holds).
	delete(n.requested, page)
	same := proto.PagePayload{Page: page, Ver: 7, Enc: proto.EncSame, Push: true}
	n.applyPush(&same)
	if fullReqs != 2 {
		t.Fatalf("header-only push drop sent %d full re-requests, want 2", fullReqs)
	}
	if got := c.wireStats.PushDrops; got != 2 {
		t.Errorf("PushDrops = %d, want 2", got)
	}
}

// TestWireForwardingMismatchHeals is the integration companion: with the
// forwarder pushing read-ahead pages, mid-run twin corruption makes pushes
// drop while the demand reads they raced are suppressed at the directory.
// The run must still terminate with the correct output.
func TestWireForwardingMismatchHeals(t *testing.T) {
	im := build(t, wireShareSrc)
	cfg := DefaultConfig()
	cfg.Slaves = 3
	cfg.Forwarding = true

	ref, err := Run(im, cfg)
	if err != nil {
		t.Fatal(err)
	}

	c, err := NewCluster(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []int64{2_000_000, 5_000_000, 9_000_000} {
		at := at
		c.k.Post(at, func() {
			for _, n := range c.nodes {
				if n.id == 0 {
					continue
				}
				for page, tw := range n.twins {
					if n.space.PermOf(page) == mem.PermReadWrite {
						continue
					}
					tw.ver += 1000
				}
			}
		})
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Console != ref.Console || res.ExitCode != ref.ExitCode {
		t.Errorf("forwarding heal diverged: got %q (exit %d), want %q (exit %d)",
			res.Console, res.ExitCode, ref.Console, ref.ExitCode)
	}
}

// TestWireSplittingEquivalence runs a false-sharing workload with page
// splitting on across the ablation matrix: split twins must follow
// SplitHome's layout or re-fetches would install wrong content.
func TestWireSplittingEquivalence(t *testing.T) {
	const src = `
long arr[512];
long bar[3];
long worker(long idx) {
	for (long r = 0; r < 30; r++) {
		for (long i = 0; i < 16; i++) arr[idx * 16 + i] += idx + r + i;
	}
	barrier_wait(bar);
	return 0;
}
long main() {
	barrier_init(bar, 8);
	long tids[8];
	for (long i = 0; i < 8; i++) tids[i] = thread_create((long)worker, i);
	for (long i = 0; i < 8; i++) thread_join(tids[i]);
	long s = 0;
	for (long i = 0; i < 512; i++) s += arr[i];
	print_long(s);
	print_char('\n');
	return 0;
}`
	im := build(t, src)
	base := DefaultConfig()
	base.Slaves = 4
	base.Splitting = true
	base.SplitThreshold = 4

	var want string
	first := true
	for name, cfg := range wireVariants(base) {
		res, err := Run(im, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.ExitCode != 0 {
			t.Fatalf("%s: exit %d console %q", name, res.ExitCode, res.Console)
		}
		if first {
			want, first = res.Console, false
		} else if res.Console != want {
			t.Errorf("%s diverged: got %q want %q", name, res.Console, want)
		}
	}
}

// TestWireMigrationEquivalence keeps the rebalancer moving threads while the
// wire layer runs: a migrated thread's faults resume on a node with
// different twins, and the belief map must stay per-node, not per-thread.
func TestWireMigrationEquivalence(t *testing.T) {
	im := build(t, wireShareSrc)
	base := DefaultConfig()
	base.Slaves = 3
	base.RebalanceNs = 400_000

	var want string
	first := true
	for name, cfg := range wireVariants(base) {
		res, err := Run(im, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.ExitCode != 0 {
			t.Fatalf("%s: exit %d console %q", name, res.ExitCode, res.Console)
		}
		if first {
			want, first = res.Console, false
		} else if res.Console != want {
			t.Errorf("%s diverged: got %q want %q", name, res.Console, want)
		}
	}
}

// TestWireUnderFaults turns on the seeded fault injector (dup/reorder/drop)
// with the wire layer enabled: the ARQ retransmits diffs and batched
// invalidations, and absolute-word deltas plus dedup must keep application
// exactly-once. Output must match the fault-free reference bit for bit.
func TestWireUnderFaults(t *testing.T) {
	im := build(t, wireShareSrc)
	base := DefaultConfig()
	base.Slaves = 3

	ref, err := Run(im, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{7, 21} {
		cfg := base
		cfg.Faults = &netsim.FaultPlan{
			Seed:        seed,
			DropRate:    0.05,
			DupRate:     0.10,
			ReorderRate: 0.10,
			JitterNs:    50_000,
		}
		res, err := Run(im, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Console != ref.Console || res.ExitCode != ref.ExitCode {
			t.Errorf("seed %d diverged under faults: got %q (exit %d), want %q (exit %d)",
				seed, res.Console, res.ExitCode, ref.Console, ref.ExitCode)
		}
	}
}

// TestWireCoalescingBatches checks invalidation batching actually happens on
// a workload with multi-page write bursts invalidating multiple sharers.
func TestWireCoalescingBatches(t *testing.T) {
	const src = `
long a[4096];
long bar[3];
long worker(long idx) {
	long s = 0;
	for (long j = 0; j < 4096; j++) s += a[j];
	barrier_wait(bar);
	if (idx == 0) { for (long j = 0; j < 4096; j++) a[j] = j; }
	barrier_wait(bar);
	long x = 0;
	for (long j = 0; j < 4096; j++) x += a[j];
	return s + x;
}
long main() {
	barrier_init(bar, 4);
	long tids[4];
	for (long i = 0; i < 4; i++) tids[i] = thread_create((long)worker, i);
	for (long i = 0; i < 4; i++) thread_join(tids[i]);
	print_long(a[100] + a[4000]);
	print_char('\n');
	return 0;
}`
	cfg := DefaultConfig()
	cfg.Slaves = 4
	res := buildRun(t, src, cfg)
	if res.ExitCode != 0 {
		t.Fatalf("exit %d console %q", res.ExitCode, res.Console)
	}
	if res.Wire.InvBatches == 0 {
		t.Errorf("no invalidation batches on a multi-page write burst: %+v", res.Wire)
	}
	if res.Wire.InvBatchPages <= res.Wire.InvBatches {
		t.Errorf("batches did not merge pages: %d batches, %d pages",
			res.Wire.InvBatches, res.Wire.InvBatchPages)
	}
	if res.Net.ByKind[0] != 0 {
		t.Errorf("invalid-kind messages on the wire")
	}
}
