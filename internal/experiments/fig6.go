package experiments

import (
	"fmt"
	"io"

	"dqemu/internal/core"
	"dqemu/internal/workloads"
)

// Fig6 reproduces Figure 6: 32 threads acquire/release a mutex. Worst case:
// one global lock (paper: 5 000 acquisitions each); best case: per-thread
// private locks (paper: 500 000 each). Elapsed time vs slave count, plus
// single-node QEMU baselines.
type Fig6 struct {
	Threads                 int
	WorstAcq, BestAcq       int
	QEMUWorstNs, QEMUBestNs int64
	Rows                    []Fig6Row
}

// Fig6Row is one cluster size.
type Fig6Row struct {
	Slaves  int
	WorstNs int64 // DQEMU-1 in the paper's legend
	BestNs  int64 // DQEMU-2
}

// RunFig6 executes the mutex sweep.
func RunFig6(o Options) (*Fig6, error) {
	o.normalize()
	threads := 32
	// The worst case always uses the paper's 5000 acquisitions: shorter
	// runs end before the threads overlap and the contention never builds.
	worstAcq, bestAcq := 5_000, 50_000
	switch o.Scale {
	case Full:
		bestAcq = 500_000
	case Smoke:
		worstAcq, bestAcq = 100, 500
	}
	worstIm, err := workloads.LockBench(threads, worstAcq, false)
	if err != nil {
		return nil, err
	}
	bestIm, err := workloads.LockBench(threads, bestAcq, true)
	if err != nil {
		return nil, err
	}
	out := &Fig6{Threads: threads, WorstAcq: worstAcq, BestAcq: bestAcq}

	// Mutex hand-offs are sub-microsecond events; sample them with a fine
	// scheduling quantum so lock migrations interleave as they would on
	// real cores (see DESIGN.md on quantum granularity).
	cfg := func(slaves int) core.Config {
		c := baseConfig(slaves)
		c.QuantumNs = 2_000
		return c
	}
	qw, err := run(worstIm, cfg(0))
	if err != nil {
		return nil, fmt.Errorf("fig6 qemu worst: %w", err)
	}
	qb, err := run(bestIm, cfg(0))
	if err != nil {
		return nil, fmt.Errorf("fig6 qemu best: %w", err)
	}
	out.QEMUWorstNs, out.QEMUBestNs = qw.TimeNs, qb.TimeNs
	o.logf("fig6: qemu baselines: worst %.3fs best %.3fs", seconds(qw.TimeNs), seconds(qb.TimeNs))

	for slaves := 1; slaves <= o.MaxSlaves; slaves++ {
		rw, err := run(worstIm, cfg(slaves))
		if err != nil {
			return nil, fmt.Errorf("fig6 worst slaves=%d: %w", slaves, err)
		}
		rb, err := run(bestIm, cfg(slaves))
		if err != nil {
			return nil, fmt.Errorf("fig6 best slaves=%d: %w", slaves, err)
		}
		out.Rows = append(out.Rows, Fig6Row{Slaves: slaves, WorstNs: rw.TimeNs, BestNs: rb.TimeNs})
		o.logf("fig6: %d slave(s): worst %.3fs best %.3fs", slaves, seconds(rw.TimeNs), seconds(rb.TimeNs))
	}
	return out, nil
}

// Print renders the figure as a table.
func (f *Fig6) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 6: mutex performance, %d threads (elapsed seconds)\n", f.Threads)
	fmt.Fprintf(w, "%-12s %-22s %-22s\n", "slaves",
		fmt.Sprintf("global lock x%d", f.WorstAcq),
		fmt.Sprintf("private locks x%d", f.BestAcq))
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%-12d %-22.3f %-22.3f\n", r.Slaves, seconds(r.WorstNs), seconds(r.BestNs))
	}
	fmt.Fprintf(w, "%-12s %-22.3f %-22.3f\n", "qemu-4.2.0", seconds(f.QEMUWorstNs), seconds(f.QEMUBestNs))
}
