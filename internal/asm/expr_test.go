package asm

import "testing"

func TestEvalExpr(t *testing.T) {
	syms := func(name string) (int64, bool) {
		switch name {
		case "base":
			return 0x1000, true
		case "K":
			return 10, true
		}
		return 0, false
	}
	cases := []struct {
		src  string
		want int64
	}{
		{"42", 42},
		{"0x10", 16},
		{"0b101", 5},
		{"-7", -7},
		{"~0", -1},
		{"1+2*3", 7},
		{"(1+2)*3", 9},
		{"10/3", 3},
		{"10%3", 1},
		{"1<<12", 4096},
		{"256>>4", 16},
		{"0xf0|0x0f", 255},
		{"0xff&0x0f", 15},
		{"0xff^0x0f", 0xf0},
		{"base+8", 0x1008},
		{"K*K", 100},
		{"'A'", 65},
		{"'\\n'", 10},
		{" 1 + 2 ", 3},
		{"0xffffffffffffffff", -1},
		{"-(3+4)", -7},
	}
	for _, c := range cases {
		got, err := evalExpr(c.src, syms)
		if err != nil {
			t.Errorf("eval(%q): %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("eval(%q) = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestEvalExprErrors(t *testing.T) {
	for _, src := range []string{"", "1+", "missing", "(1", "1/0", "5%0", "1 2", "'ab'", "'", "@"} {
		if _, err := evalExpr(src, nil); err == nil {
			t.Errorf("eval(%q): expected error", src)
		}
	}
}

func TestUnescape(t *testing.T) {
	got, err := unescape(`a\n\t\0\\\"\x41`)
	if err != nil {
		t.Fatal(err)
	}
	if got != "a\n\t\x00\\\"A" {
		t.Errorf("unescape = %q", got)
	}
	for _, bad := range []string{`\q`, `\x`, `\x4`, `\`} {
		if _, err := unescape(bad); err == nil {
			t.Errorf("unescape(%q): expected error", bad)
		}
	}
}
