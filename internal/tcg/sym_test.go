package tcg

import (
	"math/rand"
	"strings"
	"testing"

	"dqemu/internal/isa"
)

func alu2(kind uopKind, rd, rs1, rs2 uint8) uop {
	return uop{kind: kind, rd: rd, rs1: rs1, rs2: rs2, selfInsns: 1, selfCost: 1, exit: -1, exit2: -1}
}

func alui(kind uopKind, rd, rs1 uint8, imm int64) uop {
	return uop{kind: kind, rd: rd, rs1: rs1, imm: imm, selfInsns: 1, selfCost: 1, exit: -1, exit2: -1}
}

func TestSymEquivSeqProvesAlgebraicRewrites(t *testing.T) {
	cases := []struct {
		name     string
		ref, got []uop
	}{
		{
			"addi fold",
			[]uop{alui(uAddi, 1, 2, 10), alui(uAddi, 1, 1, 20)},
			[]uop{alui(uAddi, 1, 2, 30)},
		},
		{
			"xor-self to li 0",
			[]uop{alu2(uXor, 3, 7, 7)},
			[]uop{{kind: uLi, rd: 3, val: 0, selfInsns: 1, selfCost: 1, exit: -1, exit2: -1}},
		},
		{
			"independent addi commute",
			[]uop{alui(uAddi, 1, 2, 5), alui(uAddi, 3, 4, 6)},
			[]uop{alui(uAddi, 3, 4, 6), alui(uAddi, 1, 2, 5)},
		},
		{
			"empty both",
			nil, nil,
		},
	}
	for _, c := range cases {
		if err := symEquivSeq(c.ref, c.got); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestSymEquivSeqRejectsWrongRewrites(t *testing.T) {
	ld := uop{kind: uLoad, rd: 3, rs1: 4, imm: 8, size: 8, pc: 0x100, selfInsns: 1, selfCost: 1, exit: -1, exit2: -1}
	st := uop{kind: uStore, rs1: 4, rs2: 5, imm: 8, size: 8, pc: 0x104, selfInsns: 1, selfCost: 1, exit: -1, exit2: -1}

	cases := []struct {
		name     string
		ref, got []uop
		want     string // substring of the diagnostic
	}{
		{
			"unsound immediate change",
			[]uop{alui(uAddi, 1, 1, 1)},
			[]uop{alui(uAddi, 1, 1, 2)},
			"x1",
		},
		{
			"dropped write",
			[]uop{alui(uAddi, 1, 2, 5)},
			nil,
			"x1",
		},
		{
			"wrong load address",
			[]uop{ld},
			[]uop{func() uop { u := ld; u.imm = 16; return u }()},
			"address",
		},
		{
			"store value from wrong register",
			[]uop{st},
			[]uop{func() uop { u := st; u.rs2 = 6; return u }()},
			"value",
		},
		{
			"memory reorder",
			[]uop{st, ld},
			[]uop{ld, st},
			"effect",
		},
		{
			"write deferred across a store",
			[]uop{alui(uAddi, 1, 1, 7), st},
			[]uop{st, alui(uAddi, 1, 1, 7)},
			"x1",
		},
		{
			"dropped effect",
			[]uop{st},
			nil,
			"effect count",
		},
	}
	for _, c := range cases {
		err := symEquivSeq(c.ref, c.got)
		if err == nil {
			t.Errorf("%s: proved equivalent, want rejection", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: diagnostic %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestSymEquivSeqProvesCmpBranchFusion checks the slt+guard -> fused
// compare-guard rewrite buildTrace performs: the fused form must prove
// equal, and a polarity flip must be rejected.
func TestSymEquivSeqProvesCmpBranchFusion(t *testing.T) {
	cmp := alu2(uSlt, 5, 6, 7)
	guard := uop{kind: uGuard, rs1: 5, rs2: 0, bop: isa.OpBNE, expectTaken: true,
		pc: 0x200, npc: 0x300, selfInsns: 1, selfCost: 1, exit: 0, exit2: -1}
	fused := guard
	fused.kind = uFusedCmpGuard
	fused.rd, fused.rs1, fused.rs2 = 5, 6, 7
	fused.selfInsns, fused.selfCost = 2, 2

	if err := symEquivSeq([]uop{cmp, guard}, []uop{fused}); err != nil {
		t.Errorf("fused compare-guard: %v", err)
	}

	flipped := fused
	flipped.expectTaken = false
	if err := symEquivSeq([]uop{cmp, guard}, []uop{flipped}); err == nil {
		t.Error("polarity flip proved equivalent, want rejection")
	}

	wrongOperand := fused
	wrongOperand.rs1 = 8
	if err := symEquivSeq([]uop{cmp, guard}, []uop{wrongOperand}); err == nil {
		t.Error("wrong compare operand proved equivalent, want rejection")
	}
}

// TestProveRuleSymbolicCatalog: the symbolic prover must discharge every
// schema in the engine's catalog — the shipped rules file is gated on it.
func TestProveRuleSymbolicCatalog(t *testing.T) {
	for _, info := range PeepRuleCatalog() {
		if err := ProveRuleSymbolic(info.Name, 1); err != nil {
			t.Errorf("%s: %v", info.Name, err)
		}
	}
	if err := ProveRuleSymbolic("no-such-rule", 1); err == nil {
		t.Error("unknown rule name must error")
	}
}

// TestProveRuleSymbolicRejectsUnsound feeds the prover a deliberately
// broken schema — an addi fold that adds an off-by-one — and requires a
// refutation with a concrete counterexample in the diagnostic.
func TestProveRuleSymbolicRejectsUnsound(t *testing.T) {
	bad := peepSchema{
		name: "bad-addi-fold", seq: "addi-addi",
		doc: "UNSOUND: addi rd,rs,I1 ; addi rd,rd,I2 -> addi rd,rs,I1+I2+1",
		pair: func(a, b *uop) (uop, bool) {
			if a.kind != uAddi || b.kind != uAddi || b.rd != a.rd || b.rs1 != a.rd {
				return uop{}, false
			}
			m := *b
			m.rs1 = a.rs1
			m.imm = a.imm + b.imm + 1
			m.pc = a.pc
			m.selfCost = a.selfCost + b.selfCost
			m.selfInsns = a.selfInsns + b.selfInsns
			return m, true
		},
		genPair: func(r *rand.Rand) (uop, uop) {
			rd := randReg(r)
			a := alui(uAddi, rd, uint8(r.Intn(32)), int64(r.Uint64()))
			b := alui(uAddi, rd, rd, int64(r.Uint64()))
			return a, b
		},
	}
	err := proveSchemaSymbolic(&bad, 1)
	if err == nil {
		t.Fatal("unsound rewrite proved sound")
	}
	if !strings.Contains(err.Error(), "REJECTED") {
		t.Errorf("diagnostic %q does not mark the rejection", err)
	}

	// A rewrite that clobbers x0 must also be rejected even though both
	// sides compute the "same" value.
	badX0 := peepSchema{
		name: "bad-x0", seq: "addi",
		doc: "UNSOUND: materializes into x0",
		unary: func(u *uop) (uop, bool) {
			if u.kind != uAddi || u.imm != 0 || u.rd != u.rs1 {
				return uop{}, false
			}
			m := rewriteTo(u, uLi, 7)
			m.rd = 0
			return m, true
		},
		genUnary: func(r *rand.Rand) uop {
			rd := randReg(r)
			return alui(uAddi, rd, rd, 0)
		},
	}
	if err := proveSchemaSymbolic(&badX0, 1); err == nil {
		t.Fatal("x0-clobbering rewrite proved sound")
	}
}

// TestVerifyLadderCleanRun runs the four-tier differential workload with
// translate-time verification enabled on every rung: all superblocks must
// prove equivalent (zero demotions), tier-3 compilations must pass the
// structural checker, and the final state must still match the
// interpreter.
func TestVerifyLadderCleanRun(t *testing.T) {
	const src = `
_start:
	li   s0, 0
	li   s1, 0
	li   s2, 300
	li   s3, 0x20000
	fmovd f2, 1.5
loop:
	sd   s1, 0(s3)
	sd   s0, 8(s3)
	ld   t0, 0(s3)
	ld   t1, 8(s3)
	add  s0, t0, t1
	fsd  f2, 16(s3)
	fld  f3, 16(s3)
	fadd f2, f3, f2
	addi t3, s0, 0
	addi s0, t3, 0
	addi s5, s5, 0
	addi t2, s0, 7
	andi t2, t2, 1023
	xor  s0, s0, t2
	addi s1, s1, 1
	slt  t0, s1, s2
	bnez t0, loop
	fcvt.l.d s4, f2
	halt
`
	type state struct {
		x  [32]uint64
		f  [32]float64
		pc uint64
	}
	states := map[string]state{}
	for name, tune := range tier3Rungs() {
		tune := tune
		cpu, e := tier3State(t, src, func(e *Engine) {
			tune(e)
			e.Verify = true
			e.OnVerifyFail = func(where string, entry uint64, err error) {
				t.Errorf("%s: verification failure in %s at %#x: %v", name, where, entry, err)
			}
		})
		states[name] = state{cpu.X, cpu.F, cpu.PC}
		if e.Stats.VerifyDemotions != 0 {
			t.Errorf("%s: %d verify demotions on a clean run", name, e.Stats.VerifyDemotions)
		}
		if name != "interp" && e.Stats.VerifiedSuperblocks == 0 {
			t.Errorf("%s: no superblocks verified (superblocks=%d)", name, e.Stats.Superblocks)
		}
		if (name == "tier3" || name == "tier3+peep") && e.Stats.VerifiedTier3 == 0 {
			t.Errorf("%s: no tier-3 compilations verified", name)
		}
		if e.Stats.Tier3CheckFailures != 0 {
			t.Errorf("%s: %d tier-3 structural check failures", name, e.Stats.Tier3CheckFailures)
		}
	}
	want := states["interp"]
	for name, got := range states {
		if got != want {
			t.Errorf("rung %s diverged from interpreter under -verify", name)
		}
	}
}
