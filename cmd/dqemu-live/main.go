// Command dqemu-live runs a DQEMU cluster over real TCP, one OS process per
// node — the same protocol the simulation drives, under true concurrency.
//
// Start the master (it waits for the slaves, then runs the guest):
//
//	dqemu-live -listen :9000 -slaves 2 prog.mc
//
// Start each slave (any machine that can reach the master):
//
//	dqemu-live -connect master:9000
//
// The master ships the guest image to the slaves during the handshake, so
// only the master needs the program.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"dqemu"
	"dqemu/internal/image"
	"dqemu/internal/live"
)

func main() {
	listen := flag.String("listen", "", "master: address to listen on (e.g. :9000)")
	connect := flag.String("connect", "", "slave: master address to connect to")
	slaves := flag.Int("slaves", 1, "master: number of slaves to wait for")
	forward := flag.Bool("forward", false, "enable data forwarding")
	split := flag.Bool("split", false, "enable page splitting")
	hints := flag.Bool("hints", false, "enable hint-based locality scheduling")
	timeout := flag.Duration("timeout", 2*time.Minute, "master: abort a wedged run")
	var files fileFlags
	flag.Var(&files, "file", "guest VFS file as guestpath=hostpath (repeatable)")
	flag.Parse()

	switch {
	case *connect != "":
		if err := live.RunSlave(*connect); err != nil {
			fatal(err)
		}
	case *listen != "":
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: dqemu-live -listen ADDR -slaves N prog.mc|prog.s|prog.img")
			os.Exit(2)
		}
		im, err := loadProgram(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "dqemu-live: waiting for %d slave(s) on %s\n", *slaves, ln.Addr())
		cfg := live.Config{
			Slaves:     *slaves,
			Forwarding: *forward,
			Splitting:  *split,
			HintSched:  *hints,
			Timeout:    *timeout,
			Stdout:     os.Stdout,
			Files:      map[string][]byte{},
		}
		for _, f := range files {
			data, err := os.ReadFile(f.host)
			if err != nil {
				fatal(err)
			}
			cfg.Files[f.guest] = data
		}
		res, err := live.RunMaster(ln, im, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dqemu-live: guest exited %d after %v\n", res.ExitCode, res.Wall)
		os.Exit(int(res.ExitCode))
	default:
		fmt.Fprintln(os.Stderr, "dqemu-live: need -listen (master) or -connect (slave)")
		os.Exit(2)
	}
}

func loadProgram(path string) (*dqemu.Image, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	switch {
	case strings.HasSuffix(path, ".mc"):
		return dqemu.Compile(path, string(data))
	case strings.HasSuffix(path, ".s"):
		return dqemu.Assemble(dqemu.Source{Name: path, Text: string(data)})
	case strings.HasSuffix(path, ".img"):
		return image.Decode(data)
	}
	return nil, fmt.Errorf("unknown program type %q", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dqemu-live:", err)
	os.Exit(1)
}

type fileMapping struct{ guest, host string }

type fileFlags []fileMapping

func (f *fileFlags) String() string { return fmt.Sprint(*f) }

func (f *fileFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want guestpath=hostpath, got %q", v)
	}
	*f = append(*f, fileMapping{guest: parts[0], host: parts[1]})
	return nil
}
