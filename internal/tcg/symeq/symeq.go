// Package symeq is a small symbolic bit-vector engine used for translation
// validation of the micro-op translator. Expressions are hash-consed DAGs
// over 64-bit values with normalizing constructors (constant folding,
// identity and self-operation elimination, constant reassociation), so two
// expressions built from semantically identical computations usually intern
// to the same node and equality is a pointer compare. On top of the DAG the
// package maintains two abstract domains — known bits (a known-zero and a
// known-one mask per node) and unsigned intervals — used to refute
// equalities, and a bounded exhaustive-input fallback that turns into a
// genuine proof when every free variable is narrow enough to enumerate.
//
// The operator semantics mirror the guest ALU exactly: shifts take their
// amount mod 64, signed division is total (x/0 = -1, MinInt64/-1 =
// MinInt64), remainders follow the same totalization, and unsigned division
// by zero yields all-ones. Floating-point and memory results are modeled as
// uninterpreted function applications: equal tags applied to equal
// arguments intern to the same node, which is exactly the congruence the
// translator's rewrites are allowed to rely on.
package symeq

import "math"

// Op enumerates expression node kinds.
type Op uint8

const (
	Const Op = iota
	Var
	Fun // uninterpreted function application

	Add
	Sub
	Mul
	Div  // signed, total: b==0 -> -1, MinInt64/-1 -> MinInt64
	DivU // unsigned, total: b==0 -> all ones
	Rem  // signed, total: b==0 -> a, MinInt64/-1 -> 0
	RemU // unsigned, total: b==0 -> a
	And
	Or
	Xor
	Shl // shift amount taken mod 64
	Shr
	Sar
	Eq  // 0/1
	LtS // signed <, 0/1
	LtU // unsigned <, 0/1
)

var opNames = [...]string{
	Const: "const", Var: "var", Fun: "fun",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", DivU: "divu",
	Rem: "rem", RemU: "remu", And: "and", Or: "or", Xor: "xor",
	Shl: "shl", Shr: "shr", Sar: "sar", Eq: "eq", LtS: "lts", LtU: "ltu",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// Expr is one interned DAG node. Nodes are immutable after construction and
// unique within their Builder: structural equality is pointer equality.
type Expr struct {
	Op    Op
	X, Y  *Expr   // binary operands
	Args  []*Expr // Fun arguments
	Val   uint64  // Const value; Var id
	Name  string  // Var name / Fun tag
	Width uint8   // Var/Fun: significant low bits (1..64)

	id     uint64 // creation sequence number; canonical operand order
	kz, ko uint64 // known-zero / known-one masks
	lo, hi uint64 // unsigned interval
}

// KnownBits returns the node's known-zero and known-one masks.
func (e *Expr) KnownBits() (kz, ko uint64) { return e.kz, e.ko }

// Interval returns the node's unsigned range [lo, hi].
func (e *Expr) Interval() (lo, hi uint64) { return e.lo, e.hi }

// IsConst reports whether e folded to a constant, returning its value.
func (e *Expr) IsConst() (uint64, bool) {
	if e.Op == Const {
		return e.Val, true
	}
	return 0, false
}

// Builder interns expressions. One equivalence query should build both
// sides through the same Builder so shared subterms unify.
type Builder struct {
	tab    map[string]*Expr
	vars   []*Expr
	nextID uint64
}

// NewBuilder returns an empty interning context.
func NewBuilder() *Builder {
	return &Builder{tab: make(map[string]*Expr)}
}

// Vars returns every variable minted so far, in creation order.
func (b *Builder) Vars() []*Expr { return b.vars }

func (b *Builder) intern(key string, mk func() *Expr) *Expr {
	if e, ok := b.tab[key]; ok {
		return e
	}
	e := mk()
	e.id = b.nextID
	b.nextID++
	b.tab[key] = e
	return e
}

func mask(w uint8) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// Const interns the constant v.
func (b *Builder) Const(v uint64) *Expr {
	key := string([]byte{byte(Const)}) + u64key(v)
	return b.intern(key, func() *Expr {
		return &Expr{Op: Const, Val: v, kz: ^v, ko: v, lo: v, hi: v}
	})
}

// ConstBool interns 0 or 1.
func (b *Builder) ConstBool(v bool) *Expr {
	if v {
		return b.Const(1)
	}
	return b.Const(0)
}

// Var mints a fresh full-width variable.
func (b *Builder) Var(name string) *Expr { return b.VarW(name, 64) }

// VarW mints a fresh variable ranging over [0, 2^width). Every call
// creates a new variable; name is for diagnostics only.
func (b *Builder) VarW(name string, width uint8) *Expr {
	if width == 0 || width > 64 {
		width = 64
	}
	e := &Expr{Op: Var, Name: name, Width: width, Val: uint64(len(b.vars)),
		kz: ^mask(width), lo: 0, hi: mask(width)}
	e.id = b.nextID
	b.nextID++
	b.vars = append(b.vars, e)
	return e
}

// Fun interns the application of the uninterpreted function tag to args,
// with a result known to fit in width bits (64 for a full word).
func (b *Builder) Fun(tag string, width uint8, args ...*Expr) *Expr {
	if width == 0 || width > 64 {
		width = 64
	}
	key := string([]byte{byte(Fun), width}) + tag
	for _, a := range args {
		key += u64key(a.id)
	}
	return b.intern(key, func() *Expr {
		cp := make([]*Expr, len(args))
		copy(cp, args)
		return &Expr{Op: Fun, Name: tag, Width: width, Args: cp,
			kz: ^mask(width), lo: 0, hi: mask(width)}
	})
}

func u64key(v uint64) string {
	var k [8]byte
	for i := 0; i < 8; i++ {
		k[i] = byte(v >> (8 * i))
	}
	return string(k[:])
}

func isCommutative(op Op) bool {
	switch op {
	case Add, Mul, And, Or, Xor, Eq:
		return true
	}
	return false
}

// evalOp applies op to concrete operands with guest semantics.
func evalOp(op Op, a, c uint64) uint64 {
	switch op {
	case Add:
		return a + c
	case Sub:
		return a - c
	case Mul:
		return a * c
	case Div:
		switch {
		case c == 0:
			return ^uint64(0) // -1
		case int64(a) == math.MinInt64 && int64(c) == -1:
			return a
		default:
			return uint64(int64(a) / int64(c))
		}
	case DivU:
		if c == 0 {
			return ^uint64(0)
		}
		return a / c
	case Rem:
		switch {
		case c == 0:
			return a
		case int64(a) == math.MinInt64 && int64(c) == -1:
			return 0
		default:
			return uint64(int64(a) % int64(c))
		}
	case RemU:
		if c == 0 {
			return a
		}
		return a % c
	case And:
		return a & c
	case Or:
		return a | c
	case Xor:
		return a ^ c
	case Shl:
		return a << (c & 63)
	case Shr:
		return a >> (c & 63)
	case Sar:
		return uint64(int64(a) >> (c & 63))
	case Eq:
		if a == c {
			return 1
		}
		return 0
	case LtS:
		if int64(a) < int64(c) {
			return 1
		}
		return 0
	case LtU:
		if a < c {
			return 1
		}
		return 0
	}
	return 0
}

// Bin builds op(x, y), normalizing and interning. The rewrites here are the
// exact algebra the translator's peephole and fold passes rely on; anything
// beyond it falls back to the refutation domains and stays provable only
// when both sides normalize identically.
func (b *Builder) Bin(op Op, x, y *Expr) *Expr {
	if xv, xok := x.IsConst(); xok {
		if yv, yok := y.IsConst(); yok {
			return b.Const(evalOp(op, xv, yv))
		}
	}

	// Canonical operand order for commutative ops: constants to the right,
	// otherwise older node first.
	if isCommutative(op) {
		if _, xok := x.IsConst(); xok {
			x, y = y, x
		} else if _, yok := y.IsConst(); !yok && y.id < x.id {
			x, y = y, x
		}
	}

	yv, yconst := y.IsConst()
	switch op {
	case Add:
		if yconst && yv == 0 {
			return x
		}
		// (x + c1) + c2 -> x + (c1 + c2)
		if yconst && x.Op == Add {
			if c1, ok := x.Y.IsConst(); ok {
				return b.Bin(Add, x.X, b.Const(c1+yv))
			}
		}
	case Sub:
		if x == y {
			return b.Const(0)
		}
		if yconst {
			// x - c -> x + (-c), unifying with the Add chains above.
			return b.Bin(Add, x, b.Const(-yv))
		}
	case Mul:
		if yconst {
			switch yv {
			case 0:
				return b.Const(0)
			case 1:
				return x
			}
			if x.Op == Mul {
				if c1, ok := x.Y.IsConst(); ok {
					return b.Bin(Mul, x.X, b.Const(c1*yv))
				}
			}
		}
	case And:
		if x == y {
			return x
		}
		if yconst {
			switch yv {
			case 0:
				return b.Const(0)
			case ^uint64(0):
				return x
			}
			// Masking bits that are already known clear is a no-op mask merge.
			if x.Op == And {
				if c1, ok := x.Y.IsConst(); ok {
					return b.Bin(And, x.X, b.Const(c1&yv))
				}
			}
		}
	case Or:
		if x == y {
			return x
		}
		if yconst {
			switch yv {
			case 0:
				return x
			case ^uint64(0):
				return b.Const(^uint64(0))
			}
			if x.Op == Or {
				if c1, ok := x.Y.IsConst(); ok {
					return b.Bin(Or, x.X, b.Const(c1|yv))
				}
			}
		}
	case Xor:
		if x == y {
			return b.Const(0)
		}
		if yconst {
			if yv == 0 {
				return x
			}
			if x.Op == Xor {
				if c1, ok := x.Y.IsConst(); ok {
					return b.Bin(Xor, x.X, b.Const(c1^yv))
				}
			}
		}
	case Shl, Shr, Sar:
		if yconst {
			if yv&63 == 0 {
				return x
			}
			if yv != yv&63 {
				// Normalize the amount so equal shifts intern together.
				return b.Bin(op, x, b.Const(yv&63))
			}
		}
	case Eq:
		if x == y {
			return b.Const(1)
		}
		// Known-bit disagreement decides equality without a search.
		if (x.ko&y.kz)|(x.kz&y.ko) != 0 {
			return b.Const(0)
		}
	case LtS:
		if x == y {
			return b.Const(0)
		}
	case LtU:
		if x == y {
			return b.Const(0)
		}
		if yconst && yv == 0 {
			return b.Const(0) // nothing is unsigned-below zero
		}
		if x.hi < y.lo {
			return b.Const(1)
		}
		if y.hi <= x.lo {
			return b.Const(0)
		}
	}

	key := string([]byte{byte(op)}) + u64key(x.id) + u64key(y.id)
	return b.intern(key, func() *Expr {
		e := &Expr{Op: op, X: x, Y: y}
		e.computeDomains()
		return e
	})
}

// Not inverts a 0/1 expression.
func (b *Builder) Not(x *Expr) *Expr { return b.Bin(Xor, x, b.Const(1)) }
