package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dqemu/internal/guestos"
	"dqemu/internal/image"
)

// TestDifferentialRandomPrograms generates random (but deterministic)
// multi-threaded guest programs and checks that every cluster size and
// optimization combination produces byte-identical console output. This is
// the strongest end-to-end statement about the DSM: distribution must be
// invisible to the guest.
func TestDifferentialRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(987))
	variants := []Config{}
	for _, slaves := range []int{0, 1, 3} {
		cfg := DefaultConfig()
		cfg.Slaves = slaves
		variants = append(variants, cfg)
	}
	{
		cfg := DefaultConfig()
		cfg.Slaves = 2
		cfg.Forwarding = true
		cfg.Splitting = true
		variants = append(variants, cfg)
	}
	{
		cfg := DefaultConfig()
		cfg.Slaves = 4
		cfg.HintSched = true
		cfg.PageSize = 1024
		variants = append(variants, cfg)
	}
	{
		cfg := DefaultConfig()
		cfg.Slaves = 2
		cfg.QuantumNs = 5_000
		cfg.Splitting = true
		cfg.SplitFactor = 8
		variants = append(variants, cfg)
	}
	// Translation-tier ablations: block chaining without superblocks, and
	// the same distributed, but with the indirect-branch cache off too. The
	// default variants above already exercise the superblock tier.
	{
		cfg := DefaultConfig()
		cfg.Slaves = 1
		cfg.NoSuperblock = true
		cfg.NoJumpCache = true
		variants = append(variants, cfg)
	}
	{
		cfg := DefaultConfig()
		cfg.Slaves = 2
		cfg.NoJumpCache = true
		variants = append(variants, cfg)
	}
	// Tier-3 closure compilation distributed across nodes, with and without
	// the mined peephole rules; the low threshold makes short random
	// programs actually reach the compiled tier.
	{
		cfg := DefaultConfig()
		cfg.Slaves = 2
		cfg.Tier3Threshold = 2
		variants = append(variants, cfg)
	}
	{
		cfg := DefaultConfig()
		cfg.Slaves = 3
		cfg.Tier3Threshold = 2
		cfg.NoPeephole = true
		variants = append(variants, cfg)
	}

	const programs = 8
	for p := 0; p < programs; p++ {
		src := genProgram(r)
		im := build(t, src)
		var want string
		for vi, cfg := range variants {
			res, err := Run(im, cfg)
			if err != nil {
				t.Fatalf("program %d variant %d: %v\nsource:\n%s", p, vi, err, src)
			}
			if res.ExitCode != 0 {
				t.Fatalf("program %d variant %d: exit %d, console %q\nsource:\n%s",
					p, vi, res.ExitCode, res.Console, src)
			}
			if vi == 0 {
				want = res.Console
				continue
			}
			if res.Console != want {
				t.Fatalf("program %d variant %d diverged:\n got %q\nwant %q\nsource:\n%s",
					p, vi, res.Console, want, src)
			}
		}
	}
}

// tierConfigs returns every rung of the translation ladder on a single
// node: the pure interpreter, plain chained blocks, tier-2 superblocks with
// the upper tier off, tier-3 closure compilation, and tier-3 with the mined
// peephole rules — the four-way differential matrix (plus the chained rung)
// for the tiered-translation work. The tier-3 rungs force a low promotion
// threshold so short test programs actually reach the compiled tier.
func tierConfigs() map[string]Config {
	super := DefaultConfig()
	super.NoTier3 = true
	super.NoPeephole = true

	tier3 := DefaultConfig()
	tier3.NoPeephole = true
	tier3.Tier3Threshold = 2

	tier3peep := DefaultConfig()
	tier3peep.Tier3Threshold = 2

	chained := DefaultConfig()
	chained.NoSuperblock = true
	chained.NoJumpCache = true

	interp := DefaultConfig()
	interp.Interp = true
	interp.NoChain = true
	interp.NoSuperblock = true
	interp.NoJumpCache = true

	return map[string]Config{
		"superblock": super, "tier3": tier3, "tier3+peep": tier3peep,
		"chained": chained, "interp": interp,
	}
}

// tierState is the architecturally visible outcome of a run: console bytes,
// exit code, the main thread's final registers, and every writable image
// segment's memory.
type tierState struct {
	console    string
	exitCode   int64
	x          [32]uint64
	f          [32]float64
	pc         uint64
	mem        []byte
	tier3Insns uint64
	peeps      uint64

	verifiedSB  uint64
	verifyDemos uint64
	verifiedT3  uint64
	t3CheckFail uint64
}

// runTier executes im under cfg and captures the final architectural state
// from inside the cluster.
func runTier(t *testing.T, im *image.Image, cfg Config) tierState {
	t.Helper()
	c, err := NewCluster(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The main thread's CPU outlives its bookkeeping entry; grab it now so
	// its registers can be inspected after the exit syscall retires it.
	mainCPU := c.master.node.threads[guestos.MainTID].cpu
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	st := tierState{console: res.Console, exitCode: res.ExitCode,
		x: mainCPU.X, f: mainCPU.F, pc: mainCPU.PC}
	for _, n := range res.Nodes {
		st.tier3Insns += n.Engine.Tier3Insns
		st.peeps += n.Engine.PeepApplied
		st.verifiedSB += n.Engine.VerifiedSuperblocks
		st.verifyDemos += n.Engine.VerifyDemotions
		st.verifiedT3 += n.Engine.VerifiedTier3
		st.t3CheckFail += n.Engine.Tier3CheckFailures
	}
	for _, seg := range im.Segments {
		if !seg.Writable {
			continue
		}
		buf := make([]byte, seg.MemSize)
		if err := c.master.node.space.ReadBytes(seg.Addr, buf); err != nil {
			t.Fatalf("dump segment %s: %v", seg.Name, err)
		}
		st.mem = append(st.mem, buf...)
	}
	return st
}

// TestDifferentialTiers proves the ladder's coherence claim end to end:
// the interpreter, chained blocks, tier-2 superblocks, tier-3 closures, and
// tier-3 with mined peephole rules all leave bit-identical architectural
// state — registers and memory — for the same guest program, not just
// identical console output. The tier-3 rungs must also demonstrably run on
// the compiled tier rather than silently falling back to tier-2.
func TestDifferentialTiers(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	const programs = 4
	for p := 0; p < programs; p++ {
		src := genProgram(r)
		im := build(t, src)

		want := runTier(t, im, tierConfigs()["superblock"])
		for name, cfg := range tierConfigs() {
			if name == "superblock" {
				continue
			}
			got := runTier(t, im, cfg)
			if (name == "tier3" || name == "tier3+peep") && got.tier3Insns == 0 {
				t.Errorf("program %d tier %s never executed tier-3 closures", p, name)
			}
			if got.console != want.console || got.exitCode != want.exitCode {
				t.Fatalf("program %d tier %s output diverged:\n got %q (exit %d)\nwant %q (exit %d)\nsource:\n%s",
					p, name, got.console, got.exitCode, want.console, want.exitCode, src)
			}
			if got.x != want.x || got.f != want.f || got.pc != want.pc {
				t.Fatalf("program %d tier %s registers diverged:\n got pc=%#x x=%v\nwant pc=%#x x=%v\nsource:\n%s",
					p, name, got.pc, got.x, want.pc, want.x, src)
			}
			if !bytes.Equal(got.mem, want.mem) {
				for i := range got.mem {
					if got.mem[i] != want.mem[i] {
						t.Fatalf("program %d tier %s memory diverged at writable-segment offset %#x: got %#x want %#x\nsource:\n%s",
							p, name, i, got.mem[i], want.mem[i], src)
					}
				}
			}
		}
	}
}

// TestDifferentialTiersVerified re-runs the tier ladder with translate-time
// translation validation on: every superblock the translator produces must
// be symbolically proved against the per-instruction reference semantics
// and every tier-3 compilation must pass the structural checker — with zero
// demotions, on real multi-threaded guest programs, while the architectural
// state still matches the interpreter-free baseline.
func TestDifferentialTiersVerified(t *testing.T) {
	r := rand.New(rand.NewSource(1717))
	const programs = 2
	for p := 0; p < programs; p++ {
		src := genProgram(r)
		im := build(t, src)

		base := runTier(t, im, tierConfigs()["superblock"])
		for name, cfg := range tierConfigs() {
			if name == "interp" {
				continue // nothing to verify: no superblocks are built
			}
			cfg.Verify = true
			got := runTier(t, im, cfg)
			if got.verifyDemos != 0 {
				t.Errorf("program %d tier %s: %d verify demotions on a sound translator", p, name, got.verifyDemos)
			}
			if got.t3CheckFail != 0 {
				t.Errorf("program %d tier %s: %d tier-3 structural check failures", p, name, got.t3CheckFail)
			}
			if name != "chained" && got.verifiedSB == 0 {
				t.Errorf("program %d tier %s: no superblocks verified", p, name)
			}
			if (name == "tier3" || name == "tier3+peep") && got.verifiedT3 == 0 {
				t.Errorf("program %d tier %s: no tier-3 compilations verified", p, name)
			}
			if got.console != base.console || got.exitCode != base.exitCode ||
				got.x != base.x || got.f != base.f || got.pc != base.pc || !bytes.Equal(got.mem, base.mem) {
				t.Fatalf("program %d tier %s diverged under -verify\nsource:\n%s", p, name, src)
			}
		}
	}
}

// genProgram builds a random guest program whose output is schedule
// independent: workers combine results only through per-thread slots,
// commutative atomic adds/xors, and barrier-separated phases.
func genProgram(r *rand.Rand) string {
	threads := 2 + r.Intn(7)    // 2..8
	loops := 20 + r.Intn(200)   // per-thread work
	arrLen := 64 + r.Intn(1024) // shared array
	useBarrier := r.Intn(2) == 0
	useMutex := r.Intn(2) == 0

	var sb strings.Builder
	fmt.Fprintf(&sb, "long THREADS = %d;\n", threads)
	fmt.Fprintf(&sb, "long LOOPS = %d;\n", loops)
	fmt.Fprintf(&sb, "long arr[%d];\n", arrLen)
	sb.WriteString("long slots[16];\nlong acc;\nlong lock;\nlong bar[3];\n")

	// Random per-thread function of (idx, i).
	expr := genExpr(r, 3)
	fmt.Fprintf(&sb, `
long f(long idx, long i) {
	long x = %s;
	return x;
}

long worker(long idx) {
	long mine = 0;
	long chunk = %d / THREADS;
	for (long i = 0; i < LOOPS; i++) {
		long v = f(idx, i);
		mine = mine ^ v + i;
		arr[idx * chunk + (i %% chunk)] += v & 1023;
	}
`, expr, arrLen)
	if useMutex {
		sb.WriteString("\tmutex_lock(&lock);\n\tacc += mine;\n\tmutex_unlock(&lock);\n")
	} else {
		sb.WriteString("\t__amoadd(&acc, mine);\n")
	}
	if useBarrier {
		sb.WriteString("\tbarrier_wait(bar);\n")
	}
	sb.WriteString("\tslots[idx] = mine;\n\treturn 0;\n}\n")

	fmt.Fprintf(&sb, `
long main() {
	barrier_init(bar, THREADS);
	long tids[16];
	for (long i = 0; i < THREADS; i++) tids[i] = thread_create((long)worker, i);
	for (long i = 0; i < THREADS; i++) thread_join(tids[i]);
	long sum = 0;
	for (long i = 0; i < %d; i++) sum = sum * 31 + arr[i];
	long ssum = 0;
	for (long i = 0; i < THREADS; i++) ssum = ssum ^ slots[i];
	print_long(sum);
	print_char(' ');
	print_long(ssum);
	print_char(' ');
	print_long(acc);
	print_char('\n');
	return 0;
}
`, arrLen)
	return sb.String()
}

// genExpr builds a random arithmetic expression over idx and i.
func genExpr(r *rand.Rand, depth int) string {
	if depth == 0 || r.Intn(4) == 0 {
		switch r.Intn(3) {
		case 0:
			return "idx"
		case 1:
			return "i"
		default:
			return fmt.Sprint(r.Intn(1000) + 1)
		}
	}
	ops := []string{"+", "-", "*", "&", "|", "^"}
	op := ops[r.Intn(len(ops))]
	return fmt.Sprintf("(%s %s %s)", genExpr(r, depth-1), op, genExpr(r, depth-1))
}
