// Package trace records cluster events — protocol messages, scheduling
// decisions, page faults, syscalls — as timestamped entries that can be
// rendered as a human-readable log, filtered programmatically, or exported
// as a Chrome trace_event timeline (see WriteChrome). The simulation driver
// attaches a Tracer through core.Config.Tracer; the dqemu CLI exposes it as
// -trace and -chrome-trace.
package trace

import (
	"fmt"
	"io"
	"sync"
)

// Kind classifies trace events.
type Kind uint8

const (
	// EvMsg is a protocol message send.
	EvMsg Kind = iota
	// EvFault is a guest page fault.
	EvFault
	// EvSyscall is a guest syscall trap.
	EvSyscall
	// EvSched is a scheduling decision (dispatch, block, wake, migrate).
	EvSched
	// EvSplit is a page-splitting event.
	EvSplit
)

func (k Kind) String() string {
	switch k {
	case EvMsg:
		return "msg"
	case EvFault:
		return "fault"
	case EvSyscall:
		return "syscall"
	case EvSched:
		return "sched"
	case EvSplit:
		return "split"
	default:
		return "event"
	}
}

// Phase distinguishes instantaneous events from begin/end span pairs. Spans
// carry a Name (the span type, e.g. "exec" or "page-stall") and nest per
// (node, tid) track, mapping 1:1 onto Chrome trace_event "B"/"E" phases.
type Phase uint8

const (
	// PhInstant is a point event (the default for Record).
	PhInstant Phase = iota
	// PhBegin opens a span on the event's (node, tid) track.
	PhBegin
	// PhEnd closes the most recent open span on the track.
	PhEnd
)

// Event is one recorded occurrence.
type Event struct {
	TimeNs int64
	Kind   Kind
	Phase  Phase
	Node   int
	TID    int64
	// Name is the span type for PhBegin/PhEnd events ("" for instants).
	Name   string
	Detail string
}

// Tracer collects events. The zero value is unusable; construct with New.
// Recording is safe for concurrent use (the live driver runs nodes on
// several goroutines).
type Tracer struct {
	mu     sync.Mutex
	events []Event
	limit  int
	// dropped counts events discarded after the limit was hit.
	dropped uint64
	// sinkMu serializes sink writes without blocking recorders: event
	// admission happens under mu only; the I/O happens under sinkMu so a
	// slow sink never stalls other nodes' Record calls.
	sinkMu sync.Mutex
	sink   io.Writer
}

// New returns a tracer keeping at most limit events (0 means 1<<20).
// If sink is non-nil every event is also written to it as it happens.
func New(limit int, sink io.Writer) *Tracer {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Tracer{limit: limit, sink: sink}
}

// Record appends an instantaneous event.
func (t *Tracer) Record(timeNs int64, kind Kind, node int, tid int64, format string, args ...interface{}) {
	if t == nil {
		return
	}
	t.emit(timeNs, kind, PhInstant, node, tid, "", format, args)
}

// Begin opens a named span on the (node, tid) track. Pair with End; spans
// on one track must nest (close in reverse open order), matching the
// Chrome trace_event B/E contract.
func (t *Tracer) Begin(timeNs int64, kind Kind, node int, tid int64, name string) {
	if t == nil {
		return
	}
	t.emit(timeNs, kind, PhBegin, node, tid, name, "", nil)
}

// End closes the most recent open span named name on the (node, tid) track.
func (t *Tracer) End(timeNs int64, kind Kind, node int, tid int64, name string) {
	if t == nil {
		return
	}
	t.emit(timeNs, kind, PhEnd, node, tid, name, "", nil)
}

// emit admits one event. The limit check runs before any formatting so a
// saturated tracer costs neither allocation nor Sprintf work, and the sink
// write happens outside the admission lock.
func (t *Tracer) emit(timeNs int64, kind Kind, phase Phase, node int, tid int64, name, format string, args []interface{}) {
	t.mu.Lock()
	if len(t.events) >= t.limit {
		t.dropped++
		t.mu.Unlock()
		return
	}
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	ev := Event{TimeNs: timeNs, Kind: kind, Phase: phase, Node: node, TID: tid, Name: name, Detail: detail}
	t.events = append(t.events, ev)
	sink := t.sink
	t.mu.Unlock()
	if sink != nil {
		t.sinkMu.Lock()
		fmt.Fprintln(sink, ev.String())
		t.sinkMu.Unlock()
	}
}

// String renders one event line.
func (e Event) String() string {
	switch e.Phase {
	case PhBegin:
		return fmt.Sprintf("%12dns node%d %-7s tid=%-4d B:%s %s", e.TimeNs, e.Node, e.Kind, e.TID, e.Name, e.Detail)
	case PhEnd:
		return fmt.Sprintf("%12dns node%d %-7s tid=%-4d E:%s %s", e.TimeNs, e.Node, e.Kind, e.TID, e.Name, e.Detail)
	default:
		return fmt.Sprintf("%12dns node%d %-7s tid=%-4d %s", e.TimeNs, e.Node, e.Kind, e.TID, e.Detail)
	}
}

// Events returns a snapshot of the recorded events.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Dropped reports how many events were discarded after the limit.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Filter returns the recorded events matching kind.
func (t *Tracer) Filter(kind Kind) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Event
	for _, e := range t.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes every event to w.
func (t *Tracer) Dump(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.events {
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	if t.dropped > 0 {
		fmt.Fprintf(w, "... %d events dropped (limit %d)\n", t.dropped, t.limit)
	}
	return nil
}
