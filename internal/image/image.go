// Package image defines the guest binary image produced by the assembler
// and consumed by the loader: a set of segments (text, rodata, data, bss), an
// entry point, and a symbol table. An image plays the role the statically
// linked ARM ELF binaries play in the paper (§6.1); it can be serialised to a
// compact binary form so guest programs can be shipped between tools and, in
// live mode, between cluster nodes.
package image

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Default guest address-space layout. Everything fits below 2 GiB so that
// any guest address can be materialised with a single 32-bit literal.
const (
	DefaultTextBase = 0x0001_0000 // code
	DefaultDataGap  = 0x1000      // gap between segments
	StackTop        = 0x4000_0000 // main-thread stack grows down from here
	StackSize       = 1 << 20     // 1 MiB per guest thread
	ShadowBase      = 0x6000_0000 // shadow pages for page splitting live here
	ShadowLimit     = 0x7000_0000
)

// Segment is one contiguous region of the guest address space. MemSize may
// exceed len(Data); the remainder is zero-filled (bss).
type Segment struct {
	Name     string
	Addr     uint64
	Data     []byte
	MemSize  uint64 // total size in memory; >= len(Data)
	Writable bool
}

// Image is a loadable guest program.
type Image struct {
	Entry    uint64
	Segments []Segment
	Symbols  map[string]uint64
}

// New returns an empty image.
func New() *Image {
	return &Image{Symbols: map[string]uint64{}}
}

// AddSegment appends a segment, keeping segments sorted by address and
// rejecting overlaps.
func (im *Image) AddSegment(s Segment) error {
	if s.MemSize < uint64(len(s.Data)) {
		s.MemSize = uint64(len(s.Data))
	}
	for _, old := range im.Segments {
		if s.Addr < old.Addr+old.MemSize && old.Addr < s.Addr+s.MemSize {
			return fmt.Errorf("image: segment %q [%#x,%#x) overlaps %q [%#x,%#x)",
				s.Name, s.Addr, s.Addr+s.MemSize, old.Name, old.Addr, old.Addr+old.MemSize)
		}
	}
	im.Segments = append(im.Segments, s)
	sort.Slice(im.Segments, func(i, j int) bool { return im.Segments[i].Addr < im.Segments[j].Addr })
	return nil
}

// Symbol returns the address of a defined symbol.
func (im *Image) Symbol(name string) (uint64, bool) {
	addr, ok := im.Symbols[name]
	return addr, ok
}

// End returns the first address past the highest segment, i.e. where the
// program break (heap) starts.
func (im *Image) End() uint64 {
	var end uint64
	for _, s := range im.Segments {
		if e := s.Addr + s.MemSize; e > end {
			end = e
		}
	}
	return end
}

// Text returns the text segment, which by convention is named "text".
func (im *Image) Text() (Segment, bool) {
	for _, s := range im.Segments {
		if s.Name == "text" {
			return s, true
		}
	}
	return Segment{}, false
}

const magic = "GA64IMG1"

// Encode serialises the image.
func (im *Image) Encode() []byte {
	buf := []byte(magic)
	buf = binary.LittleEndian.AppendUint64(buf, im.Entry)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(im.Segments)))
	for _, s := range im.Segments {
		buf = appendString(buf, s.Name)
		buf = binary.LittleEndian.AppendUint64(buf, s.Addr)
		buf = binary.LittleEndian.AppendUint64(buf, s.MemSize)
		var w uint32
		if s.Writable {
			w = 1
		}
		buf = binary.LittleEndian.AppendUint32(buf, w)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Data)))
		buf = append(buf, s.Data...)
	}
	names := make([]string, 0, len(im.Symbols))
	for name := range im.Symbols {
		names = append(names, name)
	}
	sort.Strings(names)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(names)))
	for _, name := range names {
		buf = appendString(buf, name)
		buf = binary.LittleEndian.AppendUint64(buf, im.Symbols[name])
	}
	return buf
}

// Decode parses a serialised image.
func Decode(buf []byte) (*Image, error) {
	r := reader{buf: buf}
	if string(r.bytes(len(magic))) != magic {
		return nil, fmt.Errorf("image: bad magic")
	}
	im := New()
	im.Entry = r.u64()
	nseg := int(r.u32())
	for i := 0; i < nseg && r.err == nil; i++ {
		var s Segment
		s.Name = r.str()
		s.Addr = r.u64()
		s.MemSize = r.u64()
		s.Writable = r.u32() != 0
		n := int(r.u32())
		s.Data = append([]byte(nil), r.bytes(n)...)
		if r.err == nil {
			if err := im.AddSegment(s); err != nil {
				return nil, err
			}
		}
	}
	nsym := int(r.u32())
	for i := 0; i < nsym && r.err == nil; i++ {
		name := r.str()
		im.Symbols[name] = r.u64()
	}
	if r.err != nil {
		return nil, fmt.Errorf("image: truncated: %v", r.err)
	}
	return im, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || r.off+n > len(r.buf) {
		if r.err == nil {
			r.err = fmt.Errorf("need %d bytes at offset %d of %d", n, r.off, len(r.buf))
		}
		return make([]byte, n)
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u32() uint32 { return binary.LittleEndian.Uint32(r.bytes(4)) }
func (r *reader) u64() uint64 { return binary.LittleEndian.Uint64(r.bytes(8)) }
func (r *reader) str() string { return string(r.bytes(int(r.u32()))) }
