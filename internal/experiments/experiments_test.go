package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// smoke runs every experiment at Smoke scale on a 2-slave sweep, checking
// structure and printability rather than magnitudes.
func smokeOpts() Options { return Options{Scale: Smoke, MaxSlaves: 2} }

func TestFig5Smoke(t *testing.T) {
	f, err := RunFig5(smokeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 2 || f.Rows[0].Speedup != 1.0 {
		t.Fatalf("rows: %+v", f.Rows)
	}
	if f.QEMUNs <= 0 || f.QEMURatio <= 0 {
		t.Errorf("qemu baseline: %d %f", f.QEMUNs, f.QEMURatio)
	}
	var buf bytes.Buffer
	f.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Error("print output missing header")
	}
}

func TestFig6Smoke(t *testing.T) {
	f, err := RunFig6(smokeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 2 {
		t.Fatalf("rows: %+v", f.Rows)
	}
	for _, r := range f.Rows {
		if r.WorstNs <= 0 || r.BestNs <= 0 {
			t.Errorf("row %+v", r)
		}
	}
	var buf bytes.Buffer
	f.Print(&buf)
	if !strings.Contains(buf.String(), "mutex") {
		t.Error("print output missing header")
	}
}

func TestTable1Smoke(t *testing.T) {
	tb, err := RunTable1(smokeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	// The headline ordering must hold even at smoke scale.
	byName := map[string]float64{}
	for _, r := range tb.Rows {
		if r.Throughput <= 0 {
			t.Errorf("%s throughput %f", r.Name, r.Throughput)
		}
		byName[r.Name] = r.Throughput
	}
	if byName["Remote Sequential Access"] >= byName["QEMU Sequential Access"] {
		t.Error("remote should be slower than local")
	}
	if byName["Page forwarding Enabled"] <= byName["Remote Sequential Access"] {
		t.Error("forwarding should beat plain remote access")
	}
	var buf bytes.Buffer
	tb.Print(&buf)
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("print output missing header")
	}
}

func TestFig7Smoke(t *testing.T) {
	f, err := RunFig7(smokeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("benchmarks: %d", len(f.Benchmarks))
	}
	for _, b := range f.Benchmarks {
		if len(b.Rows) != 2 {
			t.Errorf("%s rows: %d", b.Name, len(b.Rows))
		}
		if b.Rows[0].OriginSpeedup != 1.0 {
			t.Errorf("%s not normalized", b.Name)
		}
	}
	var buf bytes.Buffer
	f.Print(&buf)
	if !strings.Contains(buf.String(), "blackscholes") {
		t.Error("print output missing benchmark")
	}
}

func TestFig8Smoke(t *testing.T) {
	f, err := RunFig8(smokeOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("benchmarks: %d", len(f.Benchmarks))
	}
	for _, b := range f.Benchmarks {
		for _, r := range b.Rows {
			if r.Hint.Total() <= 0 || r.RR.Total() <= 0 {
				t.Errorf("%s slaves=%d empty breakdown", b.Name, r.Slaves)
			}
		}
	}
	var buf bytes.Buffer
	f.Print(&buf)
	if !strings.Contains(buf.String(), "fluidanimate") {
		t.Error("print output missing benchmark")
	}
}
