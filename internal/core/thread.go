package core

import "dqemu/internal/tcg"

// threadState tracks where a guest thread is in its lifecycle.
type threadState uint8

const (
	tRunnable threadState = iota
	tRunning
	tBlockedPage    // waiting for the coherence protocol
	tBlockedSyscall // waiting for a delegated syscall reply (incl. futex)
	tBlockedTimer   // nanosleep
	tDead
)

func (s threadState) String() string {
	switch s {
	case tRunnable:
		return "runnable"
	case tRunning:
		return "running"
	case tBlockedPage:
		return "page-wait"
	case tBlockedSyscall:
		return "syscall-wait"
	case tBlockedTimer:
		return "sleeping"
	default:
		return "dead"
	}
}

// thread is one guest thread living on one node. Threads never migrate in
// this implementation once placed (the paper migrates contexts at creation
// time, §4.1).
type thread struct {
	tid  int64
	cpu  *tcg.CPU
	node *node

	state      threadState
	needWrite  bool   // for tBlockedPage: waiting for write access
	waitPage   uint64 // for tBlockedPage
	blockStart int64

	// syscallRetry re-runs a node-local syscall whose guest-memory access
	// faulted; the faulting page has been requested and the handler repeats
	// once it arrives.
	syscallRetry func(t *thread)

	// migrating marks a thread the master has asked to move; its context
	// ships to the master the next time it reaches a clean runnable
	// boundary instead of being re-enqueued.
	migrating bool

	// Per-thread time breakdown (Fig. 8): execution, page-fault stall,
	// syscall stall.
	execNs    int64
	faultNs   int64
	syscallNs int64
}

// ThreadStats is the per-thread breakdown reported in results.
type ThreadStats struct {
	TID       int64
	Node      int
	ExecNs    int64
	FaultNs   int64
	SyscallNs int64
}
