// Package proto defines the wire protocol spoken between DQEMU cluster
// nodes: coherence traffic (page requests, contents, invalidations), syscall
// delegation, thread management and the optimization side-channels (page
// splitting remaps, forwarded pages, scheduling hints). One Msg type covers
// all kinds; the binary codec is used by the live TCP transport and to size
// messages for the simulated network's bandwidth model.
package proto

import (
	"encoding/binary"
	"fmt"
)

// Kind discriminates message types.
type Kind uint8

const (
	KInvalid Kind = iota

	// Coherence protocol (§4.2).
	KPageReq     // slave -> master: Page, Addr, Write
	KPageContent // master -> node: Page, Perm, Data
	KInvalidate  // master -> sharer: Page
	KInvAck      // sharer -> master: Page
	KFetch       // master -> owner: Page, Write (true = invalidate, false = downgrade)
	KFetchReply  // owner -> master: Page, Data
	KRetry       // master -> node: Page — re-execute the faulting access (page was split)

	// Optimizations (§5).
	KRemap // master -> all: Page, Shadows (page splitting)
	KPush  // master -> node: Page, Data (data forwarding, Shared state)

	// Syscall delegation (§4.3).
	KSyscallReq   // slave -> master: TID, Num, Args
	KSyscallReply // master -> slave: TID, Ret

	// Thread management (§4.1).
	KThreadStart // master -> node: TID, CPU (serialized context)
	KHintNote    // node -> master: TID, Num=group (locality hint, §5.3)
	KShutdown    // master -> all: stop; Num = exit code

	// Dynamic thread migration (extension of the paper's §4.1 context
	// shipping): the master asks a node to hand over a thread; the node
	// ships the context back when the thread reaches a clean boundary.
	KMigrate    // master -> node: TID (Num = target node, informational)
	KMigrateCtx // node -> master: TID, CPU

	// Live-mode bootstrap (internal/live): the master assigns the slave its
	// node id and ships the guest image.
	KInit // master -> slave: Num=node id, Args[0]=cluster size, Data=image
	KInitAck

	// Reliable delivery (fault-tolerant transport): cumulative acknowledgement
	// for the per-link sequence space. Acks themselves are sent unreliably;
	// they are idempotent and a later ack subsumes a lost one.
	KAck // node -> node: Seq = highest contiguous sequence delivered

	// Wire-efficient coherence (delta transfers + multicast coalescing):
	// the master batches every page it revokes from one sharer during a
	// coherence event into a single message, and the sharer acknowledges all
	// of them in one reply. Page-splitting remaps ride along in the batch.
	KInvBatch    // master -> sharer: Data = InvBatch (pages + remap entries)
	KInvAckBatch // sharer -> master: Data = ack entries (page + shadow blob)

	// KindCount is one past the highest message kind. Fixed-size per-kind
	// tables (netsim.Stats.ByKind and friends) are sized from it, so adding a
	// kind above this line grows them automatically.
	KindCount
)

var kindNames = [...]string{
	KInvalid: "invalid", KPageReq: "page-req", KPageContent: "page-content",
	KInvalidate: "invalidate", KInvAck: "inv-ack", KFetch: "fetch",
	KFetchReply: "fetch-reply", KRetry: "retry", KRemap: "remap", KPush: "push",
	KSyscallReq: "syscall-req", KSyscallReply: "syscall-reply",
	KThreadStart: "thread-start", KHintNote: "hint", KShutdown: "shutdown",
	KInit: "init", KInitAck: "init-ack",
	KMigrate: "migrate", KMigrateCtx: "migrate-ctx",
	KAck: "ack", KInvBatch: "inv-batch", KInvAckBatch: "inv-ack-batch",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Msg is one protocol message. Unused fields are zero.
type Msg struct {
	Kind Kind
	From int32
	To   int32
	// Seq is the per-link sequence number stamped by the reliable transport
	// (0 = unsequenced). For KSyscallReq/KSyscallReply it doubles as the
	// per-thread request id used to deduplicate retried delegations.
	Seq     uint64
	TID     int64
	Page    uint64
	Addr    uint64
	Write   bool
	Perm    uint8
	// Flags carries wire-layer framing bits (FlagCoh, FlagFullResend).
	Flags uint8
	// Ver is a per-page directory version: on KPageReq the requester's twin
	// version (0 = no usable twin), on KFetch the epoch the owner's content
	// will be known as, on KRemap the home version of the original page at
	// split time (nodes whose twin matches split it along the shadows).
	Ver     uint64
	Num     int64 // syscall number / hint group
	Ret     uint64
	Args    [6]uint64
	Data    []byte
	Shadows []uint64
	CPU     []byte
	// San is the DQSan piggyback: an encoded vector clock (syscall
	// delegation, futex replies, thread start/migration) or an encoded
	// shadow page (coherence transfers). Empty when the sanitizer is off,
	// so it costs nothing on the wire in normal runs.
	San []byte
}

// Msg.Flags bits.
const (
	// FlagCoh marks Data as an encoded payload container ([]PagePayload)
	// rather than raw page bytes (KPageContent, KFetchReply, KPush).
	FlagCoh uint8 = 1 << iota
	// FlagFullResend on a KPageReq asks for a full-page grant: the
	// requester's twin proved unusable (a delta mismatched), so the
	// directory must ship content even where it would normally reaffirm.
	FlagFullResend
)

// HeaderSize approximates the fixed per-message header cost on the wire;
// everything beyond it (Data, CPU, Shadows, San) is payload.
const HeaderSize = 64

// WireSize returns the message size in bytes for the bandwidth model.
func (m *Msg) WireSize() int64 {
	return int64(HeaderSize + m.PayloadSize())
}

// PayloadSize is the variable-length portion of the message: page data or
// payload containers, serialized CPU contexts, shadow lists and the DQSan
// piggyback.
func (m *Msg) PayloadSize() int {
	return len(m.Data) + len(m.CPU) + 8*len(m.Shadows) + len(m.San)
}

// Encode serialises the message (length-prefixed frame).
func (m *Msg) Encode() []byte {
	buf := make([]byte, 4, 128+len(m.Data)+len(m.CPU))
	buf = append(buf, byte(m.Kind))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.From))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.To))
	buf = binary.LittleEndian.AppendUint64(buf, m.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.TID))
	buf = binary.LittleEndian.AppendUint64(buf, m.Page)
	buf = binary.LittleEndian.AppendUint64(buf, m.Addr)
	var w byte
	if m.Write {
		w = 1
	}
	buf = append(buf, w, m.Perm, m.Flags)
	buf = binary.LittleEndian.AppendUint64(buf, m.Ver)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Num))
	buf = binary.LittleEndian.AppendUint64(buf, m.Ret)
	for _, a := range m.Args {
		buf = binary.LittleEndian.AppendUint64(buf, a)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Shadows)))
	for _, s := range m.Shadows {
		buf = binary.LittleEndian.AppendUint64(buf, s)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Data)))
	buf = append(buf, m.Data...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.CPU)))
	buf = append(buf, m.CPU...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.San)))
	buf = append(buf, m.San...)
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	return buf
}

// Decode parses a frame produced by Encode (without consuming the length
// prefix, which the transport strips). It returns the message.
func Decode(buf []byte) (*Msg, error) {
	r := &reader{buf: buf}
	m := &Msg{}
	m.Kind = Kind(r.u8())
	m.From = int32(r.u32())
	m.To = int32(r.u32())
	m.Seq = r.u64()
	m.TID = int64(r.u64())
	m.Page = r.u64()
	m.Addr = r.u64()
	m.Write = r.u8() != 0
	m.Perm = r.u8()
	m.Flags = r.u8()
	m.Ver = r.u64()
	m.Num = int64(r.u64())
	m.Ret = r.u64()
	for i := range m.Args {
		m.Args[i] = r.u64()
	}
	if n := int(r.u32()); n > 0 {
		if n > 1<<20 {
			return nil, fmt.Errorf("proto: absurd shadow count %d", n)
		}
		m.Shadows = make([]uint64, n)
		for i := range m.Shadows {
			m.Shadows[i] = r.u64()
		}
	}
	m.Data = r.blob()
	m.CPU = r.blob()
	m.San = r.blob()
	if r.err != nil {
		return nil, fmt.Errorf("proto: decode %v: %w", m.Kind, r.err)
	}
	return m, nil
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil || r.off+n > len(r.buf) {
		if r.err == nil {
			r.err = fmt.Errorf("truncated at %d (+%d of %d)", r.off, n, len(r.buf))
		}
		return make([]byte, n)
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() byte    { return r.take(1)[0] }
func (r *reader) u16() uint16 { return binary.LittleEndian.Uint16(r.take(2)) }
func (r *reader) u32() uint32 { return binary.LittleEndian.Uint32(r.take(4)) }
func (r *reader) u64() uint64 { return binary.LittleEndian.Uint64(r.take(8)) }

func (r *reader) blob() []byte {
	n := int(r.u32())
	if r.err != nil || n == 0 {
		return nil
	}
	if n > 1<<24 {
		r.err = fmt.Errorf("absurd blob size %d", n)
		return nil
	}
	return append([]byte(nil), r.take(n)...)
}
