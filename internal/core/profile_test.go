package core

import (
	"testing"

	"dqemu/internal/metrics"
)

// A multi-node workload with cross-node sharing and lock traffic must fill
// every section of the metrics snapshot: phase-split fault histograms, page
// heat, lock contention, and the per-thread/per-node breakdowns.
func TestMetricsSnapshotFromClusterRun(t *testing.T) {
	// The critical section holds the lock across a sleep, far longer than
	// the futex-wait delegation round trip, so contending threads reliably
	// park instead of winning the EAGAIN re-check race (the lock profile
	// only sees contended acquisitions).
	src := `
long lock;
long counter;
long worker(long idx) {
	for (long r = 0; r < 3; r++) {
		mutex_lock(&lock);
		counter += 1;
		sleep_ns(800000);
		mutex_unlock(&lock);
	}
	return 0;
}
long main() {
	long tids[6];
	for (long i = 0; i < 6; i++) tids[i] = thread_create((long)worker, i);
	for (long i = 0; i < 6; i++) thread_join(tids[i]);
	print_long(counter);
	return 0;
}`
	cfg := DefaultConfig()
	cfg.Slaves = 2
	cfg.Metrics = true
	res := buildRun(t, src, cfg)
	if res.Console != "18" {
		t.Fatalf("console = %q, want 18", res.Console)
	}
	s := res.Metrics
	if s == nil {
		t.Fatal("Config.Metrics on but Result.Metrics is nil")
	}
	if err := s.Validate(MetricFaultE2E, MetricFaultDirWait, MetricFaultTransfer, MetricFaultApply, MetricMigrate); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	e2e := s.Histograms[MetricFaultE2E]
	if e2e.Count == 0 {
		t.Fatal("no remote-fault latencies recorded on a 2-slave contended run")
	}
	if e2e.P50 <= 0 || e2e.P99 < e2e.P50 {
		t.Fatalf("fault e2e percentiles implausible: %+v", e2e)
	}
	dir := s.Histograms[MetricFaultDirWait]
	xfer := s.Histograms[MetricFaultTransfer]
	if dir.Count == 0 || xfer.Count == 0 {
		t.Fatalf("phase histograms empty: dir=%d xfer=%d", dir.Count, xfer.Count)
	}
	// The transfer phase includes wire latency, so its median must be on
	// the order of the configured one-way latency or more.
	if xfer.P50 < cfg.Net.LatencyNs/2 {
		t.Errorf("transfer p50 = %dns, implausibly below wire latency %dns", xfer.P50, cfg.Net.LatencyNs)
	}
	// E2E covers all phases: its p99 must not be below any single phase's.
	if e2e.Max < xfer.P50 {
		t.Errorf("e2e max %d < transfer p50 %d", e2e.Max, xfer.P50)
	}

	if len(s.PageHeat) == 0 {
		t.Fatal("page heat map empty despite cross-node sharing")
	}
	var sawMultiNode bool
	for _, row := range s.PageHeat {
		if row.Faults == 0 && row.Invals == 0 {
			t.Fatalf("zero-pressure row in heat map: %+v", row)
		}
		if row.Nodes >= 2 {
			sawMultiNode = true
		}
	}
	if !sawMultiNode {
		t.Error("no page faulted from two nodes; heat attribution looks wrong")
	}

	if len(s.Locks) == 0 {
		t.Fatal("lock contention table empty despite a contended mutex")
	}
	top := s.Locks[0]
	if top.Waits == 0 || top.Wakes == 0 || top.WaitNs <= 0 {
		t.Fatalf("lock row not populated: %+v", top)
	}
	if top.MaxWaiters < 1 {
		t.Fatalf("max waiters = %d", top.MaxWaiters)
	}

	if len(s.Threads) != 7 { // main + 6 workers
		t.Fatalf("thread rows = %d, want 7", len(s.Threads))
	}
	var execTotal int64
	for _, tr := range s.Threads {
		execTotal += tr.ExecNs
	}
	if execTotal == 0 {
		t.Fatal("per-thread exec time all zero")
	}
	if len(s.Nodes) != 3 {
		t.Fatalf("node rows = %d, want 3", len(s.Nodes))
	}
	var translate int64
	for _, nr := range s.Nodes {
		translate += nr.TranslateNs
	}
	if translate == 0 {
		t.Fatal("per-node translate time all zero")
	}

	if s.Counters["fault.requests"] == 0 {
		t.Error("fault.requests counter empty")
	}
	if s.Counters["inv.sent"] == 0 {
		t.Error("inv.sent counter empty (write sharing must invalidate)")
	}
}

// Migration latency lands in the migrate histogram and the per-thread rows.
func TestMetricsRecordMigrations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Slaves = 3
	cfg.HintSched = true
	cfg.RebalanceNs = 2_000_000
	cfg.Metrics = true
	res := buildRun(t, skewSrc, cfg)
	if res.Migrations == 0 {
		t.Fatal("no migrations")
	}
	mg := res.Metrics.Histograms[MetricMigrate]
	if mg.Count == 0 || mg.Count > res.Migrations {
		t.Fatalf("migrate histogram count = %d, migrations = %d", mg.Count, res.Migrations)
	}
	if mg.Min <= 0 {
		t.Fatalf("migration transit min = %dns; shipping a context is never free", mg.Min)
	}
	var migNs int64
	for _, tr := range res.Metrics.Threads {
		migNs += tr.MigrateNs
	}
	if migNs != mg.Sum {
		t.Fatalf("per-thread migrate total %d != histogram sum %d", migNs, mg.Sum)
	}
}

// With metrics off the result carries no snapshot and delta ratio stays
// meaningful when the wire layer is active.
func TestMetricsDisabledIsNil(t *testing.T) {
	res := buildRun(t, `long main() { print_str("x"); return 0; }`, DefaultConfig())
	if res.Metrics != nil {
		t.Fatal("Result.Metrics should be nil with Config.Metrics off")
	}
}

// The instrumentation hooks live unconditionally in the fault/sched hot
// paths; with Config.Metrics off (nil profiler) they must not allocate.
func TestProfilerHooksZeroAllocWhenDisabled(t *testing.T) {
	var p *clusterProf
	if n := testing.AllocsPerRun(200, func() {
		p.reqArrived(1, 0x40000, true, 100)
		p.grantSent(1, 0x40000, 200)
		p.contentApplied(1, 0x40000, 300)
		p.faultResolved(1, 0x40000, 250, 350)
		p.requestDropped(1, 0x40000)
		p.invalidated(0x40000)
		p.migStarted(7, 100)
		p.migArrived(7, 400)
		if p.futexProfile() != nil {
			t.Fatal("nil profiler handed out a lock profile")
		}
	}); n != 0 {
		t.Fatalf("disabled profiler hooks allocated %v per run, want 0", n)
	}
	if p.snapshot(nil, nil) != nil {
		t.Fatal("nil profiler snapshot should be nil")
	}
	var _ *metrics.Snapshot = p.snapshot(nil, nil)
}
