package live

import (
	"net"
	"testing"
	"time"

	"dqemu/internal/core"
	"dqemu/internal/grt"
	"dqemu/internal/image"
)

// runLive starts a master and slaves goroutines over loopback TCP and runs
// the image to completion.
func runLive(t *testing.T, im *image.Image, cfg Config) *Result {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if cfg.Timeout == 0 {
		cfg.Timeout = 60 * time.Second
	}
	for i := 0; i < cfg.Slaves; i++ {
		go func() {
			if err := RunSlave(ln.Addr().String()); err != nil {
				t.Errorf("slave: %v", err)
			}
		}()
	}
	res, err := RunMaster(ln, im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func build(t *testing.T, src string) *image.Image {
	t.Helper()
	im, err := grt.BuildProgram("live.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestLiveHello(t *testing.T) {
	im := build(t, `
long main() {
	print_str("hello over tcp\n");
	return 0;
}`)
	res := runLive(t, im, Config{Slaves: 0})
	if res.Console != "hello over tcp\n" || res.ExitCode != 0 {
		t.Errorf("console=%q exit=%d", res.Console, res.ExitCode)
	}
}

func TestLiveThreadsAcrossNodes(t *testing.T) {
	im := build(t, `
long counter;
long lock;
long nodesSeen[8];
long worker(long idx) {
	nodesSeen[idx] = node_id();
	for (long i = 0; i < 200; i++) {
		mutex_lock(&lock);
		counter += 1;
		mutex_unlock(&lock);
	}
	return 0;
}
long main() {
	long tids[4];
	for (long i = 0; i < 4; i++) tids[i] = thread_create((long)worker, i);
	for (long i = 0; i < 4; i++) thread_join(tids[i]);
	print_long(counter);
	print_char(' ');
	long remote = 0;
	for (long i = 0; i < 4; i++) {
		if (nodesSeen[i] != 0) remote += 1;
	}
	print_long(remote);
	print_char('\n');
	return 0;
}`)
	res := runLive(t, im, Config{Slaves: 2})
	// 800 lock-protected increments, and all 4 workers ran on slave nodes.
	if res.Console != "800 4\n" {
		t.Errorf("console = %q", res.Console)
	}
}

func TestLiveBarrierAndSharing(t *testing.T) {
	im := build(t, `
long bar[3];
long grid[64];
long worker(long idx) {
	for (long round = 0; round < 3; round++) {
		grid[idx * 8 + round] = idx + round;
		barrier_wait(bar);
	}
	return 0;
}
long main() {
	barrier_init(bar, 7);
	long tids[6];
	for (long i = 0; i < 6; i++) tids[i] = thread_create((long)worker, i);
	for (long round = 0; round < 3; round++) barrier_wait(bar);
	for (long i = 0; i < 6; i++) thread_join(tids[i]);
	long sum = 0;
	for (long i = 0; i < 64; i++) sum += grid[i];
	print_long(sum);
	print_char('\n');
	return 0;
}`)
	res := runLive(t, im, Config{Slaves: 3})
	// sum = sum over idx 0..5, round 0..2 of (idx+round) = 3*15 + 6*3 = 63
	if res.Console != "63\n" {
		t.Errorf("console = %q", res.Console)
	}
}

func TestLiveMatchesSimulation(t *testing.T) {
	// The strongest cross-validation: the same schedule-independent guest
	// program must produce identical output under the deterministic
	// simulation and under true concurrency over TCP.
	src := `
long acc;
long results[8];
long worker(long idx) {
	long x = 0;
	for (long i = 0; i < 2000; i++) x = x * 31 + (idx ^ i);
	results[idx] = x;
	__amoadd(&acc, x & 0xffff);
	return 0;
}
long main() {
	long tids[8];
	for (long i = 0; i < 8; i++) tids[i] = thread_create((long)worker, i);
	for (long i = 0; i < 8; i++) thread_join(tids[i]);
	long h = 0;
	for (long i = 0; i < 8; i++) h = h ^ results[i];
	print_long(h);
	print_char(' ');
	print_long(acc);
	print_char('\n');
	return 0;
}`
	im := build(t, src)

	simCfg := core.DefaultConfig()
	simCfg.Slaves = 3
	simRes, err := core.Run(im, simCfg)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		liveRes := runLive(t, im, Config{Slaves: 3})
		if liveRes.Console != simRes.Console {
			t.Fatalf("trial %d: live %q != sim %q", trial, liveRes.Console, simRes.Console)
		}
	}
}

func TestLiveVFSAndOptimizations(t *testing.T) {
	im := build(t, `
long data[8192];
long out;
long worker(long a) {
	long s = 0;
	for (long i = 0; i < 8192; i++) s += data[i];
	out = s;
	return 0;
}
long main() {
	long fd = open_file("/seed.txt", 0);
	char buf[4];
	sys_read(fd, buf, 1);
	long seed = buf[0] - '0';
	for (long i = 0; i < 8192; i++) data[i] = seed;
	thread_join(thread_create((long)worker, 0));
	print_long(out);
	print_char('\n');
	return 0;
}`)
	res := runLive(t, im, Config{
		Slaves:     1,
		Forwarding: true,
		Splitting:  true,
		Files:      map[string][]byte{"/seed.txt": []byte("3")},
	})
	if res.Console != "24576\n" {
		t.Errorf("console = %q", res.Console)
	}
}

func TestLiveSleepAndTime(t *testing.T) {
	im := build(t, `
long main() {
	long t0 = now_ns();
	sleep_ns(20000000);   // 20 ms wall time
	long t1 = now_ns();
	if (t1 - t0 < 15000000) return 1;
	print_str("slept\n");
	return 0;
}`)
	res := runLive(t, im, Config{Slaves: 1})
	if res.ExitCode != 0 || res.Console != "slept\n" {
		t.Errorf("exit=%d console=%q", res.ExitCode, res.Console)
	}
}
