package minicc

import "fmt"

// Kind enumerates mini-C type kinds.
type Kind uint8

const (
	KindVoid Kind = iota
	KindLong
	KindChar
	KindDouble
	KindPtr
)

// Type is a mini-C type. Types are small and compared structurally.
type Type struct {
	Kind Kind
	Elem *Type // for KindPtr
}

var (
	tyVoid   = &Type{Kind: KindVoid}
	tyLong   = &Type{Kind: KindLong}
	tyChar   = &Type{Kind: KindChar}
	tyDouble = &Type{Kind: KindDouble}
)

func ptrTo(t *Type) *Type { return &Type{Kind: KindPtr, Elem: t} }

// size returns the storage size of a value of this type.
func (t *Type) size() int64 {
	switch t.Kind {
	case KindChar:
		return 1
	case KindVoid:
		return 0
	default:
		return 8
	}
}

func (t *Type) isFloat() bool { return t.Kind == KindDouble }
func (t *Type) isInt() bool   { return t.Kind == KindLong || t.Kind == KindChar }
func (t *Type) isPtr() bool   { return t.Kind == KindPtr }

func (t *Type) String() string {
	switch t.Kind {
	case KindVoid:
		return "void"
	case KindLong:
		return "long"
	case KindChar:
		return "char"
	case KindDouble:
		return "double"
	case KindPtr:
		return t.Elem.String() + "*"
	}
	return "?"
}

func sameType(a, b *Type) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind == KindPtr {
		return sameType(a.Elem, b.Elem)
	}
	return true
}

// ---- Expressions ----

type expr interface{ exprNode() }

type intLit struct {
	val int64
}

type floatLit struct {
	val float64
}

type strLit struct {
	val string
}

type varRef struct {
	name string
	line int
}

type unary struct {
	op   string // - ! ~ * &
	x    expr
	line int
}

type binary struct {
	op   string
	l, r expr
	line int
}

type assign struct {
	op   string // "=", "+=", ...
	l, r expr
	line int
}

type incDec struct {
	op   string // "++" or "--"
	l    expr
	line int
}

type cond struct {
	c, t, f expr
	line    int
}

type call struct {
	name string
	args []expr
	line int
}

type index struct {
	base expr
	idx  expr
	line int
}

type cast struct {
	to   *Type
	x    expr
	line int
}

func (*intLit) exprNode()   {}
func (*floatLit) exprNode() {}
func (*strLit) exprNode()   {}
func (*varRef) exprNode()   {}
func (*unary) exprNode()    {}
func (*binary) exprNode()   {}
func (*assign) exprNode()   {}
func (*incDec) exprNode()   {}
func (*cond) exprNode()     {}
func (*call) exprNode()     {}
func (*index) exprNode()    {}
func (*cast) exprNode()     {}

// ---- Statements ----

type stmt interface{ stmtNode() }

type block struct {
	stmts []stmt
}

type declStmt struct {
	name     string
	ty       *Type
	arrayLen int64 // -1 for scalars
	init     expr  // optional, scalars only
	line     int

	frameOff int64 // assigned by the code generator's prescan
}

type exprStmt struct {
	x expr
}

type ifStmt struct {
	c    expr
	then stmt
	els  stmt // may be nil
}

type whileStmt struct {
	c    expr
	body stmt
}

type forStmt struct {
	init stmt // declStmt or exprStmt, may be nil
	c    expr // may be nil
	post expr // may be nil
	body stmt
}

type returnStmt struct {
	x    expr // may be nil
	line int
}

type breakStmt struct{ line int }
type continueStmt struct{ line int }

func (*block) stmtNode()        {}
func (*declStmt) stmtNode()     {}
func (*exprStmt) stmtNode()     {}
func (*ifStmt) stmtNode()       {}
func (*whileStmt) stmtNode()    {}
func (*forStmt) stmtNode()      {}
func (*returnStmt) stmtNode()   {}
func (*breakStmt) stmtNode()    {}
func (*continueStmt) stmtNode() {}

// ---- Top level ----

type param struct {
	name string
	ty   *Type
}

type funcDecl struct {
	name   string
	ret    *Type
	params []param
	body   *block
	line   int
}

type globalDecl struct {
	name     string
	ty       *Type
	arrayLen int64 // -1 for scalars
	initI    *int64
	initF    *float64
	initS    *string // for char* globals: pointer to string literal
	initList []expr  // array initializer (constant int/float literals)
	line     int
}

type externDecl struct {
	name string
	ret  *Type
}

type program struct {
	globals []*globalDecl
	funcs   []*funcDecl
	externs []*externDecl
}

type compileError struct {
	file string
	line int
	msg  string
}

func (e *compileError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.file, e.line, e.msg)
}
