package proto

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
)

// refPage builds a deterministic pseudo-random page.
func refPage(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestDeltaRoundtrip(t *testing.T) {
	const ps = 4096
	base := refPage(1, ps)
	for _, touched := range []int{0, 1, 7, 64, 200} {
		cur := append([]byte(nil), base...)
		r := rand.New(rand.NewSource(int64(touched) + 2))
		for i := 0; i < touched; i++ {
			cur[r.Intn(ps)] ^= byte(r.Intn(255) + 1)
		}
		d, ok := EncodeDelta(base, cur, ps)
		if !ok {
			t.Fatalf("touched=%d: encode failed", touched)
		}
		got := append([]byte(nil), base...)
		if err := ApplyDelta(got, d); err != nil {
			t.Fatalf("touched=%d: apply: %v", touched, err)
		}
		// The reference transfer is a full-page copy.
		if !bytes.Equal(got, cur) {
			t.Fatalf("touched=%d: roundtrip mismatch", touched)
		}
	}
}

func TestDeltaIdempotent(t *testing.T) {
	const ps = 1024
	base := refPage(3, ps)
	cur := append([]byte(nil), base...)
	copy(cur[100:], []byte("delta transfers carry absolute words"))
	d, ok := EncodeDelta(base, cur, ps)
	if !ok {
		t.Fatal("encode failed")
	}
	got := append([]byte(nil), base...)
	for i := 0; i < 3; i++ { // an ARQ duplicate must not corrupt the page
		if err := ApplyDelta(got, d); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
	if !bytes.Equal(got, cur) {
		t.Fatal("repeated apply diverged")
	}
}

func TestDeltaRLE(t *testing.T) {
	const ps = 4096
	cur := make([]byte, ps)
	copy(cur[512:], []byte("sparse first touch"))
	d, ok := EncodeDelta(nil, cur, ps/2)
	if !ok {
		t.Fatal("sparse page did not fit the RLE budget")
	}
	if len(d) >= ps/2 {
		t.Fatalf("RLE encoding too large: %d", len(d))
	}
	got := make([]byte, ps)
	if err := ApplyDelta(got, d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cur) {
		t.Fatal("RLE roundtrip mismatch")
	}
}

func TestDeltaLimit(t *testing.T) {
	const ps = 4096
	base := make([]byte, ps)
	cur := refPage(4, ps) // every word differs
	if _, ok := EncodeDelta(base, cur, ps/2); ok {
		t.Fatal("fully-rewritten page fit a half-page budget")
	}
	if d, ok := EncodeDelta(base, cur, 2*ps); !ok {
		t.Fatal("encode with generous budget failed")
	} else {
		got := make([]byte, ps)
		if err := ApplyDelta(got, d); err != nil || !bytes.Equal(got, cur) {
			t.Fatalf("full-diff roundtrip: %v", err)
		}
	}
}

func TestDeltaRejectsBadShapes(t *testing.T) {
	if _, ok := EncodeDelta(make([]byte, 64), make([]byte, 72), 1024); ok {
		t.Error("mismatched base length accepted")
	}
	if _, ok := EncodeDelta(nil, make([]byte, 65), 1024); ok {
		t.Error("misaligned page length accepted")
	}
	if _, ok := EncodeDelta(nil, nil, 1024); ok {
		t.Error("empty page accepted")
	}
}

func TestApplyDeltaCorrupt(t *testing.T) {
	const ps = 512
	base := refPage(5, ps)
	cur := append([]byte(nil), base...)
	cur[8] ^= 0xff
	cur[ps-1] ^= 0xff
	d, ok := EncodeDelta(base, cur, ps)
	if !ok {
		t.Fatal("encode failed")
	}
	cases := map[string][]byte{
		"truncated header": d[:len(d)-1],
		"lone header":      d[:3],
		"out of range":     {0xff, 0xff, 0x01, 0x00, 1, 2, 3, 4, 5, 6, 7, 8},
		"zero-word run":    {0x00, 0x00, 0x00, 0x00},
		"truncated body":   {0x00, 0x00, 0x02, 0x00, 1, 2, 3},
	}
	for name, bad := range cases {
		dst := append([]byte(nil), base...)
		if err := ApplyDelta(dst, bad); err == nil {
			t.Errorf("%s: accepted", name)
		}
		// Validation happens before any write: a rejected delta must not
		// leave a torn page.
		if !bytes.Equal(dst, base) {
			t.Errorf("%s: destination modified by rejected delta", name)
		}
	}
}

func TestPayloadContainerRoundtrip(t *testing.T) {
	pls := []PagePayload{
		{Page: 0x40, Ver: 7, BaseVer: 5, Enc: EncDelta, Perm: 2, Body: []byte{0, 0, 1, 0, 1, 2, 3, 4, 5, 6, 7, 8}},
		{Page: 0x41, Ver: 3, Enc: EncSame, Perm: 1, Push: true, San: []byte{9, 9}},
		{Page: 0x42, Ver: 1, Enc: EncFull, Body: bytes.Repeat([]byte{0xaa}, 128)},
	}
	got, err := DecodePayloads(EncodePayloads(pls))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pls) {
		t.Fatalf("got %d payloads", len(got))
	}
	for i := range pls {
		a, b := pls[i], got[i]
		if a.Page != b.Page || a.Ver != b.Ver || a.BaseVer != b.BaseVer ||
			a.Enc != b.Enc || a.Perm != b.Perm || a.Push != b.Push ||
			!bytes.Equal(a.Body, b.Body) || !bytes.Equal(a.San, b.San) {
			t.Errorf("payload %d mismatch: %+v vs %+v", i, a, b)
		}
	}
	if _, err := DecodePayloads(append(EncodePayloads(pls), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestInvBatchRoundtrip(t *testing.T) {
	pages := []uint64{1, 2, 0xdeadbeef}
	remaps := []RemapEntry{{Orig: 0x99, Ver: 4, Shadows: []uint64{0x100, 0x101}}}
	gp, gr, err := DecodeInvBatch(EncodeInvBatch(pages, remaps))
	if err != nil {
		t.Fatal(err)
	}
	if len(gp) != 3 || gp[2] != 0xdeadbeef {
		t.Errorf("pages: %v", gp)
	}
	if len(gr) != 1 || gr[0].Orig != 0x99 || gr[0].Ver != 4 || len(gr[0].Shadows) != 2 {
		t.Errorf("remaps: %+v", gr)
	}
	if _, _, err := DecodeInvBatch([]byte{1}); err == nil {
		t.Error("truncated batch accepted")
	}
}

// TestBatchCountLimits pins the MaxBatchEntries contract on both sides of
// the wire: every batch count travels as a uint16, so an unchecked encoder
// would silently truncate the count while still appending every entry —
// decoding to a trailing-bytes error that fails the whole cluster. Encoders
// must refuse oversized batches loudly, and decoders must reject counts
// past the bound (which a u16 can represent: 65535 > MaxBatchEntries).
func TestBatchCountLimits(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: oversized batch did not panic", name)
			}
		}()
		f()
	}
	over := MaxBatchEntries + 1
	mustPanic("payloads", func() { EncodePayloads(make([]PagePayload, over)) })
	mustPanic("inv pages", func() { EncodeInvBatch(make([]uint64, over), nil) })
	mustPanic("inv remaps", func() { EncodeInvBatch(nil, make([]RemapEntry, over)) })
	mustPanic("shadows", func() { EncodeInvBatch(nil, []RemapEntry{{Shadows: make([]uint64, over)}}) })
	mustPanic("acks", func() { EncodeAckBatch(make([]AckEntry, over)) })

	// A count field just past the bound must be rejected as absurd, not
	// misparsed into a huge allocation or a trailing-bytes error.
	hdr := binary.LittleEndian.AppendUint16(nil, uint16(over))
	if _, err := DecodePayloads(hdr); err == nil || !strings.Contains(err.Error(), "absurd") {
		t.Errorf("payload count %d: got %v, want absurd-count error", over, err)
	}
	if _, _, err := DecodeInvBatch(hdr); err == nil || !strings.Contains(err.Error(), "absurd") {
		t.Errorf("inv-batch count %d: got %v, want absurd-count error", over, err)
	}
	if _, err := DecodeAckBatch(hdr); err == nil || !strings.Contains(err.Error(), "absurd") {
		t.Errorf("ack-batch count %d: got %v, want absurd-count error", over, err)
	}
	// At the bound everything round-trips.
	pages := make([]uint64, MaxBatchEntries)
	gp, _, err := DecodeInvBatch(EncodeInvBatch(pages, nil))
	if err != nil || len(gp) != MaxBatchEntries {
		t.Errorf("bound-sized inv batch: %d pages, err %v", len(gp), err)
	}
}

func TestAckBatchRoundtrip(t *testing.T) {
	acks := []AckEntry{{Page: 5, San: []byte{1, 2, 3}}, {Page: 6}}
	got, err := DecodeAckBatch(EncodeAckBatch(acks))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Page != 5 || !bytes.Equal(got[0].San, []byte{1, 2, 3}) || got[1].San != nil {
		t.Errorf("acks: %+v", got)
	}
	if _, err := DecodeAckBatch(append(EncodeAckBatch(acks), 7)); err == nil {
		t.Error("trailing byte accepted")
	}
}
