package core

import "testing"

// skewSrc hints every worker into the same locality group, so hint
// scheduling piles all of them onto one node — the pathological placement
// dynamic migration is meant to fix.
const skewSrc = `
long results[16];
long worker(long idx) {
	double acc = 0.0;
	for (long i = 0; i < 60000; i++) acc += 1.0 / (double)(i + 1);
	results[idx] = (long)acc;
	return 0;
}
long main() {
	long tids[12];
	for (long i = 0; i < 12; i++) {
		dq_hint(7);
		tids[i] = thread_create((long)worker, i);
	}
	for (long i = 0; i < 12; i++) thread_join(tids[i]);
	long s = 0;
	for (long i = 0; i < 12; i++) s += results[i];
	print_long(s);
	print_char('\n');
	return 0;
}`

func TestMigrationRebalancesSkewedPlacement(t *testing.T) {
	base := DefaultConfig()
	base.Slaves = 3
	base.HintSched = true // all 12 workers land on one node
	skewed := buildRun(t, skewSrc, base)

	reb := base
	reb.RebalanceNs = 2_000_000 // rebalance every 2 ms of virtual time
	balanced := buildRun(t, skewSrc, reb)

	if skewed.Console != balanced.Console {
		t.Fatalf("results differ: %q vs %q", skewed.Console, balanced.Console)
	}
	if balanced.Migrations == 0 {
		t.Fatal("no migrations happened")
	}
	if balanced.TimeNs >= skewed.TimeNs {
		t.Errorf("rebalancing did not help: %d >= %d ns (migrations=%d)",
			balanced.TimeNs, skewed.TimeNs, balanced.Migrations)
	}
	// Threads must have ended up on several nodes.
	nodesUsed := 0
	for _, ns := range balanced.Nodes {
		if ns.Node != 0 && ns.Threads > 0 {
			nodesUsed++
		}
	}
	if nodesUsed < 2 {
		t.Errorf("threads ended up on %d node(s)", nodesUsed)
	}
}

func TestMigrationPreservesBlockedThreads(t *testing.T) {
	// Threads that sleep and hold locks while the rebalancer runs must
	// migrate without losing state.
	src := `
long lock;
long counter;
long worker(long idx) {
	for (long r = 0; r < 5; r++) {
		sleep_ns(500000);
		mutex_lock(&lock);
		counter += 1;
		mutex_unlock(&lock);
	}
	return 0;
}
long main() {
	long tids[8];
	for (long i = 0; i < 8; i++) {
		dq_hint(3);
		tids[i] = thread_create((long)worker, i);
	}
	for (long i = 0; i < 8; i++) thread_join(tids[i]);
	print_long(counter);
	return 0;
}`
	cfg := DefaultConfig()
	cfg.Slaves = 2
	cfg.HintSched = true
	cfg.RebalanceNs = 300_000
	res := buildRun(t, src, cfg)
	if res.Console != "40" {
		t.Errorf("counter = %q, want 40", res.Console)
	}
	if res.Migrations == 0 {
		t.Error("expected some migrations")
	}
}
