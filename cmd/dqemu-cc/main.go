// Command dqemu-cc compiles mini-C guest programs.
//
//	dqemu-cc prog.mc              # write prog.img (linked with the runtime)
//	dqemu-cc -S prog.mc           # print GA64 assembly instead
//	dqemu-cc -o out.img prog.mc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dqemu"
)

func main() {
	emitAsm := flag.Bool("S", false, "emit GA64 assembly instead of an image")
	out := flag.String("o", "", "output path (default: input with .img suffix)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dqemu-cc [-S] [-o out] prog.mc")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	if *emitAsm {
		text, err := dqemu.CompileToAsm(path, string(src))
		if err != nil {
			fatal(err)
		}
		fmt.Print(text)
		return
	}
	im, err := dqemu.Compile(path, string(src))
	if err != nil {
		fatal(err)
	}
	target := *out
	if target == "" {
		target = strings.TrimSuffix(path, ".mc") + ".img"
	}
	if err := os.WriteFile(target, im.Encode(), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "dqemu-cc: wrote %s (entry %#x, %d segments)\n", target, im.Entry, len(im.Segments))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dqemu-cc:", err)
	os.Exit(1)
}
