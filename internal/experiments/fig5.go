package experiments

import (
	"fmt"
	"io"

	"dqemu/internal/workloads"
)

// Fig5 reproduces Figure 5: π-by-Taylor with 120 threads and no sharing,
// swept over 1..MaxSlaves slave nodes, normalized to one slave node. The
// dashed line is single-node QEMU 4.2.0 (all threads on the master).
type Fig5 struct {
	Threads int
	// QEMUNs is the single-node QEMU baseline time.
	QEMUNs int64
	// QEMURatio is QEMU's speedup relative to 1-slave DQEMU (paper: 1.04).
	QEMURatio float64
	Rows      []Fig5Row
}

// Fig5Row is one cluster size.
type Fig5Row struct {
	Slaves  int
	TimeNs  int64
	Speedup float64 // vs. 1 slave
}

// RunFig5 executes the scalability sweep.
func RunFig5(o Options) (*Fig5, error) {
	o.normalize()
	threads, repeats, terms := 120, 1200, 100
	switch o.Scale {
	case Full:
		repeats, terms = 4096, 200
	case Smoke:
		threads, repeats, terms = 16, 100, 50
	}
	im, err := workloads.Pi(threads, repeats, terms)
	if err != nil {
		return nil, err
	}
	out := &Fig5{Threads: threads}

	qemu, err := run(im, baseConfig(0))
	if err != nil {
		return nil, fmt.Errorf("fig5 qemu baseline: %w", err)
	}
	out.QEMUNs = qemu.TimeNs
	o.logf("fig5: qemu-4.2.0 single node: %.3fs", seconds(qemu.TimeNs))

	for slaves := 1; slaves <= o.MaxSlaves; slaves++ {
		res, err := run(im, baseConfig(slaves))
		if err != nil {
			return nil, fmt.Errorf("fig5 slaves=%d: %w", slaves, err)
		}
		out.Rows = append(out.Rows, Fig5Row{Slaves: slaves, TimeNs: res.TimeNs})
		o.logf("fig5: %d slave(s): %.3fs", slaves, seconds(res.TimeNs))
	}
	base := out.Rows[0].TimeNs
	for i := range out.Rows {
		out.Rows[i].Speedup = float64(base) / float64(out.Rows[i].TimeNs)
	}
	out.QEMURatio = float64(base) / float64(out.QEMUNs)
	return out, nil
}

// Print renders the figure as a table.
func (f *Fig5) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 5: scalability, pi Taylor series, %d threads (speedup vs 1 slave)\n", f.Threads)
	fmt.Fprintf(w, "%-12s %-12s %-10s\n", "slaves", "time(s)", "speedup")
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%-12d %-12.3f %-10.2f\n", r.Slaves, seconds(r.TimeNs), r.Speedup)
	}
	fmt.Fprintf(w, "%-12s %-12.3f %-10.2f   (dashed line)\n", "qemu-4.2.0", seconds(f.QEMUNs), f.QEMURatio)
}
