package proto

import (
	"encoding/binary"
	"fmt"
)

// Delta codec: word-granular page diffs for the wire-efficiency layer.
//
// A delta is a sequence of runs, each (wordOff u16, wordCount u16, then
// wordCount little-endian 64-bit words). Words carry ABSOLUTE values, not
// XOR masks, so applying the same delta twice is idempotent — a duplicated
// or retransmitted diff cannot corrupt the page. Encoding against a nil
// base diffs against the all-zero page, which doubles as the zero-run (RLE)
// encoding for freshly touched sparse pages: only the nonzero words ship.

// deltaWord is the diff granularity in bytes.
const deltaWord = 8

// runHeader is the per-run overhead (offset + count, both u16). A one-word
// gap already costs more to ship (8 bytes) than a fresh header, so runs are
// never merged across equal words.
const runHeader = 4

// EncodeDelta diffs cur against base (nil base = all zeros) and returns the
// encoded runs. It reports false when the encoding would exceed limit bytes
// — the caller falls back to a full-page transfer — or when the pages are
// not same-sized whole multiples of the word size.
func EncodeDelta(base, cur []byte, limit int) ([]byte, bool) {
	if len(cur) == 0 || len(cur)%deltaWord != 0 || len(cur)/deltaWord > 0xffff {
		return nil, false
	}
	if base != nil && len(base) != len(cur) {
		return nil, false
	}
	words := len(cur) / deltaWord
	differs := func(w int) bool {
		off := w * deltaWord
		if base == nil {
			for _, b := range cur[off : off+deltaWord] {
				if b != 0 {
					return true
				}
			}
			return false
		}
		for i := 0; i < deltaWord; i++ {
			if cur[off+i] != base[off+i] {
				return true
			}
		}
		return false
	}
	var out []byte
	for w := 0; w < words; {
		if !differs(w) {
			w++
			continue
		}
		start := w
		end := w + 1
		for end < words && differs(end) {
			end++
		}
		out = binary.LittleEndian.AppendUint16(out, uint16(start))
		out = binary.LittleEndian.AppendUint16(out, uint16(end-start))
		out = append(out, cur[start*deltaWord:end*deltaWord]...)
		if len(out) > limit {
			return nil, false
		}
		w = end
	}
	return out, true
}

// ApplyDelta patches dst in place with the encoded runs. Every run is
// bounds-checked against dst before any byte is written, so a truncated or
// corrupt delta leaves dst untouched and returns an error rather than
// panicking. Applying the same delta again is a no-op (absolute values).
func ApplyDelta(dst, delta []byte) error {
	words := len(dst) / deltaWord
	if len(dst)%deltaWord != 0 {
		return fmt.Errorf("proto: delta target size %d not word-aligned", len(dst))
	}
	// Validate first: a run that fails halfway must not leave a torn page.
	for off := 0; off < len(delta); {
		if off+runHeader > len(delta) {
			return fmt.Errorf("proto: truncated delta run header at %d", off)
		}
		start := int(binary.LittleEndian.Uint16(delta[off:]))
		count := int(binary.LittleEndian.Uint16(delta[off+2:]))
		if count == 0 {
			return fmt.Errorf("proto: empty delta run at %d", off)
		}
		if start+count > words {
			return fmt.Errorf("proto: delta run [%d,+%d) beyond %d-word page", start, count, words)
		}
		off += runHeader + count*deltaWord
		if off > len(delta) {
			return fmt.Errorf("proto: truncated delta run body")
		}
	}
	for off := 0; off < len(delta); {
		start := int(binary.LittleEndian.Uint16(delta[off:]))
		count := int(binary.LittleEndian.Uint16(delta[off+2:]))
		off += runHeader
		copy(dst[start*deltaWord:(start+count)*deltaWord], delta[off:off+count*deltaWord])
		off += count * deltaWord
	}
	return nil
}
