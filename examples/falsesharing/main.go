// falsesharing demonstrates page splitting (paper §5.1): threads on
// different nodes write disjoint 128-byte sections of one guest page. The
// page ping-pongs between nodes until the master's false-sharing detector
// splits it into shadow pages, after which every node owns its own part.
package main

import (
	"fmt"
	"log"

	"dqemu"
	"dqemu/internal/workloads"
)

func main() {
	// 16 threads on 4 slave nodes, each hammering its own 128-byte section
	// of the same page.
	im, err := workloads.FalseShare(16, 4, 128, 400)
	if err != nil {
		log.Fatal(err)
	}

	for _, split := range []bool{false, true} {
		cfg := dqemu.DefaultConfig()
		cfg.Slaves = 4
		cfg.Splitting = split
		res, err := dqemu.Run(im, cfg)
		if err != nil {
			log.Fatal(err)
		}
		mode := "page splitting OFF"
		if split {
			mode = "page splitting ON "
		}
		fmt.Printf("%s: %10.3f ms, %5d page fetches, %d pages split\n",
			mode, float64(res.TimeNs)/1e6, res.Dir.Fetches, res.Dir.Splits)
	}
	fmt.Println("\nwith splitting, each node's sections live in its own shadow page (Fig. 4)")
}
