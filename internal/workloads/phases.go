package workloads

import (
	"fmt"

	"dqemu/internal/image"
)

// Phases is the feedback scheduler's showcase workload: a phase-shifting
// kernel whose threads work in PAIRS that share a multi-page buffer
// intensely. Round-robin placement splits every pair across nodes (thread
// 2p and 2p+1 land on different slaves whenever the slave count is even),
// so the static cluster pays a ~410 µs remote fault for a large fraction of
// accesses; the adaptive scheduler sees each thread's faults charged to its
// partner's node and co-locates the pairs, after which the buffer traffic
// is node-local.
//
// The three phases stress three different control loops:
//
//  1. Stencil sweeps: each member sequentially reads the whole pair buffer
//     and bumps one word on its designated pages (even pages for member 0,
//     odd for member 1) — sequential streams the forwarder speculates on,
//     plus the cross-member write traffic that generates the locality
//     signal.
//  2. Pointer chase: random hops through the pair buffer with occasional
//     atomic perturbations — sequentiality collapses, so the adaptive
//     forwarder should shrink its per-stream windows instead of pushing
//     pages nobody reads.
//  3. Barrier storm: every thread bumps its own slot on ONE shared counter
//     page and meets a global barrier, rounds times — classic false
//     sharing the heat map flags and the proactive splitter defuses.
//
// Console output is schedule independent: cross-thread state combines only
// through commutative __amoadd writes with per-thread deterministic operand
// multisets, and the printed checksums are computed by main after all
// joins. Read-side sums (which DO depend on interleaving) go to an unprinted
// sink so the sweeps cannot be dead-code-eliminated.
func Phases(threads, iters int) (*image.Image, error) {
	if threads < 2 || threads > 64 || threads%2 != 0 {
		return nil, fmt.Errorf("workloads: phases needs an even thread count in [2,64], got %d", threads)
	}
	if iters < 1 {
		return nil, fmt.Errorf("workloads: phases needs at least one iteration")
	}
	src := fmt.Sprintf(`
long THREADS = %d;
long ITERS   = %d;
long PAGES   = 4;      // pages per pair buffer
long WPP     = 512;    // longs per page

long *bufs;            // PAIRS * PAGES pages, page aligned
long *ctr;             // one shared counter page (the false-sharing bait)
long bar[3];
long sink;             // schedule-dependent read sums land here, unprinted

long worker(long idx) {
	long pair = idx / 2;
	long par = idx & 1;
	long *buf = bufs + pair * PAGES * WPP;
	long words = PAGES * WPP;
	long s = 0;

	// Phase 1: stencil sweeps. The partner's writes keep invalidating my
	// copy of its pages, so every sweep re-faults them — and every one of
	// those faults names the partner's node as the page owner.
	for (long it = 0; it < ITERS; it++) {
		for (long i = 0; i < words; i++) s += buf[i];
		for (long p = par; p < PAGES; p += 2) __amoadd(&buf[p * WPP + idx], 1);
	}

	// Phase 2: pointer chase. Random hops inside the pair buffer; the
	// perturbation positions are a deterministic per-thread sequence, so
	// the final buffer contents stay schedule independent.
	long state = 90001 + idx * 7643;
	long pos = 0;
	for (long it = 0; it < ITERS * 64; it++) {
		pos = (pos * 1103515245 + rand_next(&state)) %% words;
		if (pos < 0) pos = -pos;
		s += buf[pos];
		if ((it & 7) == 0) __amoadd(&buf[pos], 1);
	}

	// Phase 3: barrier storm on one shared counter page. Slots are spread
	// across the page so a 4-way split actually separates the writers.
	long slot = 512 / THREADS;
	if (slot < 1) slot = 1;
	for (long r = 0; r < ITERS; r++) {
		__amoadd(&ctr[idx * slot], 1);
		barrier_wait(bar);
	}

	__amoadd(&sink, s);
	return 0;
}

long main() {
	long pairs = THREADS / 2;
	bufs = (long*)((((long)malloc(pairs * PAGES * WPP * 8 + 4096)) + 4095) & ~4095);
	ctr  = (long*)((((long)malloc(8192)) + 4095) & ~4095);
	barrier_init(bar, THREADS);
	long tids[64];
	for (long i = 0; i < THREADS; i++) tids[i] = thread_create((long)worker, i);
	for (long i = 0; i < THREADS; i++) thread_join(tids[i]);
	long bh = 0;
	for (long i = 0; i < pairs * PAGES * WPP; i++) bh = (bh * 31 + bufs[i]) & 0xffffffffffff;
	long slot = 512 / THREADS;
	if (slot < 1) slot = 1;
	long ch = 0;
	for (long i = 0; i < THREADS; i++) ch = (ch * 31 + ctr[i * slot]) & 0xffffffffffff;
	print_str("buf=");
	print_long(bh);
	print_char('\n');
	print_str("ctr=");
	print_long(ch);
	print_char('\n');
	return 0;
}`, threads, iters)
	return build("phases.mc", src)
}
