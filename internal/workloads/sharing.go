package workloads

import (
	"fmt"

	"dqemu/internal/image"
)

// This file holds the sharing-pattern workloads added beyond the paper's
// four PARSEC-like kernels: canneal-like random pointer chasing (worst case
// for page coherence and the delta codec), a dedup-like producer/consumer
// pipeline (futex-heavy queue handoff), and streamcluster-like barrier
// phases (global synchronization storms). All three are written so their
// architecturally visible outcome — console output and final shared-memory
// contents — is schedule independent: cross-thread state combines only
// through commutative atomic adds, exactly-once CAS insertions, and
// barrier-separated single-writer phases. That makes them usable in the
// four-way tier differential tests, where different translation tiers
// produce different interleavings.

// Canneal is a canneal-like kernel: a netlist of elems elements is chased
// through a random permutation (built by the main thread with Fisher-Yates,
// so it is part of the deterministic input), and every step each thread
// reads a random element and atomically perturbs another. Reads and writes
// hop pages uniformly at random — the worst case for page coherence: no
// locality for the hint scheduler, no stable ownership for the directory,
// and scattered single-word dirty sets that stress the delta codec's
// miss/overflow/full-resend paths. Final memory is deterministic because
// every cross-thread write is a commutative __amoadd.
func Canneal(threads, elems, steps int, seed int64) (*image.Image, error) {
	if threads > 64 {
		return nil, fmt.Errorf("workloads: canneal supports at most 64 threads")
	}
	if elems < 64 {
		return nil, fmt.Errorf("workloads: canneal needs at least 64 elements")
	}
	src := fmt.Sprintf(`
long THREADS = %d;
long ELEMS   = %d;
long STEPS   = %d;
long SEED    = %d;

long *val;       // perturbation targets (commutative amoadds)
long *next;      // random permutation: the pointer-chase order
long chased[64]; // per-thread chase checksum (deterministic: next is read-only)

long worker(long idx) {
	long state = SEED + idx * 1000003;
	long pos = rand_next(&state) %% ELEMS;
	long sum = 0;
	for (long s = 0; s < STEPS; s++) {
		pos = next[pos];                          // random-page read hop
		sum += next[pos];                         // and another
		long r = rand_next(&state) %% ELEMS;      // random-page write
		long d = (rand_next(&state) & 1023) - 512;
		__amoadd(&val[r], d);
	}
	chased[idx] = sum;
	return 0;
}

long main() {
	val  = (long*)malloc(ELEMS * 8 + 4096);
	next = (long*)malloc(ELEMS * 8 + 4096);
	for (long i = 0; i < ELEMS; i++) {
		val[i] = i & 255;
		next[i] = i;
	}
	// Fisher-Yates with the runtime xorshift: a genuinely random
	// permutation, so consecutive chase steps land on unrelated pages.
	long state = SEED;
	for (long i = ELEMS - 1; i > 0; i--) {
		long j = rand_next(&state) %% (i + 1);
		long t = next[i];
		next[i] = next[j];
		next[j] = t;
	}
	long tids[64];
	for (long i = 0; i < THREADS; i++) tids[i] = thread_create((long)worker, i);
	for (long i = 0; i < THREADS; i++) thread_join(tids[i]);
	long total = 0;
	long hash = 0;
	for (long i = 0; i < ELEMS; i++) {
		total += val[i];
		hash = (hash * 31 + val[i]) & 0xffffffffffff;
	}
	long walk = 0;
	for (long i = 0; i < THREADS; i++) walk += chased[i];
	print_str("total=");
	print_long(total);
	print_char('\n');
	print_str("hash=");
	print_long(hash);
	print_char('\n');
	print_str("walk=");
	print_long(walk);
	print_char('\n');
	return 0;
}`, threads, elems, steps, seed)
	return build("canneal.mc", src)
}

// Dedup is a dedup-like three-stage pipeline: producers generate a
// duplicate-rich key stream, dedup workers pop keys from a bounded queue
// and insert them into a shared CAS-claimed hash set (each distinct key is
// inserted exactly once, whichever worker wins the race), and writers
// drain unique keys from a second queue, modeling the compress/output
// stage. Both queues are single-mutex bounded rings, so every handoff
// contends one lock word across all stage threads — the futex-heavy
// pattern of the paper's Fig. 6 worst case, now with real payload flowing
// through. Console output (unique count and commutative checksums) is
// schedule independent; the queues and hash table live in heap memory.
func Dedup(producers, consumers, writers, items, keyspace, qcap int) (*image.Image, error) {
	if producers < 1 || consumers < 1 || writers < 1 {
		return nil, fmt.Errorf("workloads: dedup needs at least one thread per stage")
	}
	if producers+consumers+writers > 64 {
		return nil, fmt.Errorf("workloads: dedup supports at most 64 threads")
	}
	if keyspace < 2 || items < 1 || qcap < 2 {
		return nil, fmt.Errorf("workloads: bad dedup shape items=%d keyspace=%d qcap=%d", items, keyspace, qcap)
	}
	// The hash set is open-addressed and never resizes: size it to a power
	// of two holding all possible distinct keys at < 50%% load.
	hsize := 64
	for hsize < 2*keyspace {
		hsize *= 2
	}
	src := fmt.Sprintf(`
long PRODUCERS = %d;
long CONSUMERS = %d;
long WRITERS   = %d;
long ITEMS     = %d;
long KEYSPACE  = %d;
long QCAP      = %d;
long HSIZE     = %d;

// Queue header: [head, tail, lock, done]; slots follow in a separate block.
long *q1;
long *q1s;
long *q2;
long *q2s;
long *htab;

long uniqueCount;
long uniqueSum;
long outCount;
long outSum;

void q_push(long *q, long *slots, long v) {
	while (1) {
		mutex_lock(q + 2);
		if (q[1] - q[0] < QCAP) {
			slots[q[1] %% QCAP] = v;
			q[1] = q[1] + 1;
			mutex_unlock(q + 2);
			return;
		}
		mutex_unlock(q + 2);
		yield();
	}
}

// q_trypop returns a key, or 0 when the queue was empty.
long q_trypop(long *q, long *slots) {
	mutex_lock(q + 2);
	if (q[0] < q[1]) {
		long v = slots[q[0] %% QCAP];
		q[0] = q[0] + 1;
		mutex_unlock(q + 2);
		return v;
	}
	mutex_unlock(q + 2);
	return 0;
}

long producer(long idx) {
	long state = 77777 + idx * 9176;
	for (long i = 0; i < ITEMS; i++) {
		long k = 1 + rand_next(&state) %% KEYSPACE;   // keys are >= 1; 0 = empty
		q_push(q1, q1s, k);
	}
	__amoadd(&q1[3], 1);
	return 0;
}

long dedup(long idx) {
	while (1) {
		long v = q_trypop(q1, q1s);
		if (v == 0) {
			// All producers done and the queue drained: no more input can
			// appear (each producer's last push precedes its done mark).
			if (q1[3] == PRODUCERS) {
				if (q1[0] == q1[1]) break;
			}
			yield();
			continue;
		}
		long h = (v * 40503) & (HSIZE - 1);
		long fresh = 0;
		while (1) {
			long cur = htab[h];
			if (cur == v) break;
			if (cur == 0) {
				if (__cas(&htab[h], 0, v) == 0) { fresh = 1; break; }
				continue;   // lost the slot race: re-examine the same slot
			}
			h = (h + 1) & (HSIZE - 1);
		}
		if (fresh) {
			__amoadd(&uniqueCount, 1);
			__amoadd(&uniqueSum, v);
			q_push(q2, q2s, v);
		}
	}
	__amoadd(&q2[3], 1);
	return 0;
}

long writer(long idx) {
	while (1) {
		long v = q_trypop(q2, q2s);
		if (v == 0) {
			if (q2[3] == CONSUMERS) {
				if (q2[0] == q2[1]) break;
			}
			yield();
			continue;
		}
		__amoadd(&outCount, 1);
		__amoadd(&outSum, (v * v) %% 1000003);
	}
	return 0;
}

long main() {
	q1   = (long*)malloc(4096);
	q1s  = (long*)malloc(QCAP * 8 + 4096);
	q2   = (long*)malloc(4096);
	q2s  = (long*)malloc(QCAP * 8 + 4096);
	htab = (long*)malloc(HSIZE * 8 + 4096);
	memset((char*)htab, 0, HSIZE * 8);
	long tids[64];
	long n = 0;
	for (long i = 0; i < PRODUCERS; i++) { tids[n] = thread_create((long)producer, i); n++; }
	for (long i = 0; i < CONSUMERS; i++) { tids[n] = thread_create((long)dedup, i); n++; }
	for (long i = 0; i < WRITERS; i++)   { tids[n] = thread_create((long)writer, i); n++; }
	for (long i = 0; i < n; i++) thread_join(tids[i]);
	print_str("unique=");
	print_long(uniqueCount);
	print_char('\n');
	print_str("usum=");
	print_long(uniqueSum);
	print_char('\n');
	print_str("out=");
	print_long(outCount);
	print_char('\n');
	print_str("osum=");
	print_long(outSum);
	print_char('\n');
	return 0;
}`, producers, consumers, writers, items, keyspace, qcap, hsize)
	return build("dedup.mc", src)
}

// Streamcluster is a streamcluster-like kernel: iters k-means-style
// refinement rounds over points one-dimensional integer points. Each round
// every thread assigns its chunk to the nearest of centers centers,
// accumulates per-center sums/counts and the assignment cost with
// commutative atomic adds, and meets a global barrier; the main thread
// alone recenters between a second pair of barriers. Two full-cluster
// barriers per round with the naive wake-everyone futex barrier is the
// global-synchronization-storm pattern: every round, every node's threads
// sleep on the same generation word and stampede the master when it flips.
func Streamcluster(threads, points, centers, iters int) (*image.Image, error) {
	if threads > 63 {
		return nil, fmt.Errorf("workloads: streamcluster supports at most 63 threads")
	}
	if centers < 1 || centers > 64 || points < threads || points < centers {
		return nil, fmt.Errorf("workloads: bad streamcluster shape points=%d centers=%d", points, centers)
	}
	src := fmt.Sprintf(`
long THREADS = %d;
long POINTS  = %d;
long CENTERS = %d;
long ITERS   = %d;

long *pts;
long centers[64];
long csum[64];
long ccnt[64];
long cost;
long totalCost;
long bar[3];

long worker(long idx) {
	long chunk = POINTS / THREADS;
	long lo = idx * chunk;
	long hi = lo + chunk;
	if (idx == THREADS - 1) hi = POINTS;
	long lsum[64];
	long lcnt[64];
	for (long it = 0; it < ITERS; it++) {
		for (long c = 0; c < CENTERS; c++) { lsum[c] = 0; lcnt[c] = 0; }
		long myCost = 0;
		for (long i = lo; i < hi; i++) {
			long p = pts[i];
			long best = 0;
			long bestd = p - centers[0];
			if (bestd < 0) bestd = -bestd;
			for (long c = 1; c < CENTERS; c++) {
				long d = p - centers[c];
				if (d < 0) d = -d;
				if (d < bestd) { bestd = d; best = c; }
			}
			myCost += bestd;
			lsum[best] += p;
			lcnt[best] += 1;
		}
		for (long c = 0; c < CENTERS; c++) {
			if (lcnt[c] > 0) {
				__amoadd(&csum[c], lsum[c]);
				__amoadd(&ccnt[c], lcnt[c]);
			}
		}
		__amoadd(&cost, myCost);
		barrier_wait(bar);   // all partial sums are in
		barrier_wait(bar);   // main has recentered
	}
	return 0;
}

long main() {
	pts = (long*)malloc(POINTS * 8 + 4096);
	long state = 424243;
	for (long i = 0; i < POINTS; i++) pts[i] = rand_next(&state) %% 100000;
	for (long c = 0; c < CENTERS; c++) centers[c] = (c * 100000) / CENTERS;
	barrier_init(bar, THREADS + 1);
	long tids[64];
	for (long i = 0; i < THREADS; i++) tids[i] = thread_create((long)worker, i);
	for (long it = 0; it < ITERS; it++) {
		barrier_wait(bar);
		// Single-writer phase: only main touches the centers between the
		// two barriers, so recentering is deterministic.
		totalCost += cost;
		cost = 0;
		for (long c = 0; c < CENTERS; c++) {
			if (ccnt[c] > 0) centers[c] = csum[c] / ccnt[c];
			csum[c] = 0;
			ccnt[c] = 0;
		}
		barrier_wait(bar);
	}
	for (long i = 0; i < THREADS; i++) thread_join(tids[i]);
	long chash = 0;
	for (long c = 0; c < CENTERS; c++) chash = (chash * 31 + centers[c]) & 0xffffffffffff;
	print_str("cost=");
	print_long(totalCost);
	print_char('\n');
	print_str("centers=");
	print_long(chash);
	print_char('\n');
	return 0;
}`, threads, points, centers, iters)
	return build("streamcluster.mc", src)
}
