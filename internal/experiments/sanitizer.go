package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"dqemu/internal/image"
	"dqemu/internal/sanitizer"
	"dqemu/internal/workloads"
)

// Sanitizer is the DQSan evaluation: every workload runs twice on a
// three-node cluster — once plain (the NoSanitizer baseline), once with
// DQSan on — so each row reports both the findings and what they cost in
// host time and wire bytes. The clean benchmarks are the false-positive
// regression; the racy workload is the detection bar, including its
// cross-node count (races whose two threads ran on different nodes).
type Sanitizer struct {
	Slaves int            `json:"slaves"`
	Rows   []SanitizerRow `json:"rows"`
}

// SanitizerRow is one workload's measurement.
type SanitizerRow struct {
	Bench     string `json:"bench"`
	WantRaces bool   `json:"want_races"`
	Races     int    `json:"races"`
	CrossNode int    `json:"cross_node_races"`
	Diags     int    `json:"diags"`
	Clean     bool   `json:"clean"` // detection matched expectation

	Stats sanitizer.Stats  `json:"stats"`
	Found []sanitizer.Race `json:"found,omitempty"`

	// Overhead vs the NoSanitizer baseline.
	BaseHostNs    int64   `json:"base_host_ns"`
	SanHostNs     int64   `json:"san_host_ns"`
	HostOverhead  float64 `json:"host_overhead"` // SanHostNs / BaseHostNs
	BaseWireBytes uint64  `json:"base_wire_bytes"`
	SanWireBytes  uint64  `json:"san_wire_bytes"`
}

// sanitizerSuite returns the workloads: clean ones must stay silent, the
// racy one must trip the detector.
func sanitizerSuite() []struct {
	name      string
	wantRaces bool
	build     func(s Scale) (*image.Image, error)
} {
	return []struct {
		name      string
		wantRaces bool
		build     func(s Scale) (*image.Image, error)
	}{
		{"blackscholes", false, func(s Scale) (*image.Image, error) {
			threads, options, rounds := 8, 256, 4
			if s == Smoke {
				threads, options, rounds = 4, 32, 2
			}
			return workloads.Blackscholes(threads, options, rounds, 3)
		}},
		{"swaptions", false, func(s Scale) (*image.Image, error) {
			threads, swaptions, trials := 8, 12, 40
			if s == Smoke {
				threads, swaptions, trials = 4, 4, 8
			}
			return workloads.Swaptions(threads, swaptions, trials, 3)
		}},
		{"racy", true, func(s Scale) (*image.Image, error) {
			threads, rounds := 6, 40
			if s == Smoke {
				threads, rounds = 4, 10
			}
			return workloads.Racy(threads, rounds, 1234)
		}},
	}
}

// RunSanitizer runs the DQSan suite.
func RunSanitizer(o Options) (*Sanitizer, error) {
	o.normalize()
	slaves := 2
	out := &Sanitizer{Slaves: slaves}
	for _, b := range sanitizerSuite() {
		im, err := b.build(o.Scale)
		if err != nil {
			return nil, fmt.Errorf("sanitizer %s: %w", b.name, err)
		}
		row := SanitizerRow{Bench: b.name, WantRaces: b.wantRaces}

		// Baseline: sanitizer off. The racy guest is correct code apart from
		// the races (it exits 0), so both configurations run it fine.
		cfg := baseConfig(slaves)
		start := time.Now()
		base, err := run(im, cfg)
		row.BaseHostNs = time.Since(start).Nanoseconds()
		if err != nil {
			return nil, fmt.Errorf("sanitizer %s (baseline): %w", b.name, err)
		}
		row.BaseWireBytes = base.Net.Bytes

		cfg.Sanitizer = true
		start = time.Now()
		res, err := run(im, cfg)
		row.SanHostNs = time.Since(start).Nanoseconds()
		if err != nil {
			return nil, fmt.Errorf("sanitizer %s: %w", b.name, err)
		}
		row.SanWireBytes = res.Net.Bytes
		if row.BaseHostNs > 0 {
			row.HostOverhead = float64(row.SanHostNs) / float64(row.BaseHostNs)
		}
		if res.San == nil {
			return nil, fmt.Errorf("sanitizer %s: no report", b.name)
		}
		row.Races = len(res.San.Races)
		row.Diags = len(res.San.Diags)
		row.Stats = res.San.Stats
		row.Found = res.San.Races

		nodeOf := map[int64]int{}
		for _, t := range res.Threads {
			nodeOf[t.TID] = t.Node
		}
		for _, r := range res.San.Races {
			if r.TID != 0 && r.PrevTID != 0 && nodeOf[r.TID] != nodeOf[r.PrevTID] {
				row.CrossNode++
			}
		}
		if b.wantRaces {
			row.Clean = row.Races >= 3 && row.CrossNode >= 1
		} else {
			row.Clean = row.Races == 0
		}
		out.Rows = append(out.Rows, row)
		o.logf("sanitizer: %s: races=%d cross=%d diags=%d overhead=%.2fx",
			b.name, row.Races, row.CrossNode, row.Diags, row.HostOverhead)
	}
	return out, nil
}

// Fails counts rows whose detection did not match expectations.
func (s *Sanitizer) Fails() int {
	n := 0
	for _, r := range s.Rows {
		if !r.Clean {
			n++
		}
	}
	return n
}

// Print renders the suite as a table.
func (s *Sanitizer) Print(w io.Writer) {
	fmt.Fprintf(w, "DQSan race detection and overhead (%d slaves + master)\n", s.Slaves)
	fmt.Fprintf(w, "%-14s %-8s %-10s %-8s %-10s %-12s %-10s\n",
		"bench", "races", "crossnode", "diags", "verdict", "host-ovh", "wire-ovh")
	for _, r := range s.Rows {
		verdict := "PASS"
		if !r.Clean {
			verdict = "FAIL"
		}
		wire := float64(1)
		if r.BaseWireBytes > 0 {
			wire = float64(r.SanWireBytes) / float64(r.BaseWireBytes)
		}
		fmt.Fprintf(w, "%-14s %-8d %-10d %-8d %-10s %-12.2f %-10.2f\n",
			r.Bench, r.Races, r.CrossNode, r.Diags, verdict, r.HostOverhead, wire)
	}
	for _, r := range s.Rows {
		for _, race := range r.Found {
			fmt.Fprintf(w, "  %s: %s tid%d@%#x vs tid%d@%#x (node %d)\n",
				r.Bench, race.Kind, race.TID, race.PC, race.PrevTID, race.PrevPC, race.Node)
		}
	}
}

// WriteJSON emits the machine-readable form.
func (s *Sanitizer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
